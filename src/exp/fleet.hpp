#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/lease.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/row.hpp"
#include "exp/sweep_spec.hpp"

namespace slowcc::exp {

/// One sample of process and system memory, for fleet admission
/// control. `ok` is false when the probe could not read /proc (non-
/// Linux or restricted environments) — admission control then stands
/// down rather than guessing.
struct MemorySample {
  bool ok = false;
  std::uint64_t self_rss_bytes = 0;   // /proc/self/statm resident set
  std::uint64_t total_bytes = 0;      // /proc/meminfo MemTotal
  std::uint64_t available_bytes = 0;  // /proc/meminfo MemAvailable
};

/// Read /proc/self/statm + /proc/meminfo. ok=false on any failure.
[[nodiscard]] MemorySample sample_process_memory();

/// Fraction of system memory in use, in [0, 1] (0 when the sample is
/// not ok). System-wide on purpose: co-resident fleet workers all see
/// the same pressure and back off together.
[[nodiscard]] double memory_pressure(const MemorySample& sample) noexcept;

/// Configuration of one fleet worker process (slowcc_sweep --fleet).
///
/// N workers with distinct `worker_id`s pointed at the same `dir`
/// cooperatively drain one sweep grid: each claims trials through a
/// LeaseLedger, journals finished rows into its own shard
/// (journal.worker-<id>.jsonl), and whoever observes the grid fully
/// journaled compacts the shards into the canonical journal.jsonl and
/// writes the finals — byte-identical to a single `--jobs 1` run.
struct FleetConfig {
  std::string dir;        // shared checkpoint directory
  std::string worker_id;  // unique per process; [A-Za-z0-9._-]
  int jobs = 1;           // claim threads inside this worker

  /// A lease whose bytes have not changed for this long (by the
  /// observer's own monotonic clock) is stale and may be broken.
  double lease_ttl_seconds = 10.0;
  /// Cadence of the heartbeat thread rewriting held leases. Must be
  /// well under the TTL (enforced: < ttl / 2).
  double heartbeat_seconds = 2.0;
  /// Base wait between drain rounds when every pending trial is held
  /// by a live sibling; jittered and exponentially bounded (see
  /// DESIGN.md §11).
  double poll_seconds = 0.25;

  /// Per-trial cap on claim generations: once a trial's lease shows
  /// this many claims all gone stale (every owner died mid-trial), the
  /// observer quarantines the trial as kLeaseExpired instead of
  /// breaking the lease again.
  int max_lease_breaks = 3;
  /// Degraded-mode triggers: cumulative I/O failures against the
  /// shared directory, and leases stolen from under this worker.
  int max_io_failures = 5;
  int max_lease_losses = 16;
  /// Base of the backoff-jitter sub-streams (conventionally the
  /// spec's base_seed; fanned out per worker and round).
  std::uint64_t jitter_seed = 1;

  /// Memory admission control: when the sampled system pressure (see
  /// memory_pressure()) reaches this fraction, the worker stops
  /// claiming trials for the round and backs off on the same jittered
  /// sub-stream as an idle round; after `max_pressure_rounds`
  /// consecutive pressured rounds it degrades gracefully (exit 4,
  /// mirroring max_io_failures). 0 disables the check.
  double mem_high_water = 0.0;
  int max_pressure_rounds = 8;
  /// Memory probe; null = sample_process_memory(). Tests inject
  /// deterministic pressure through this seam.
  std::function<MemorySample()> mem_probe;

  RunnerPolicy policy;  // per-trial quarantine/retry/chaos, as --jobs
  /// Trial function; null = the experiment registry's run_trial.
  std::function<Row(const TrialDesc&)> fn;
  /// Cooperative stop (SIGTERM): polled between trials; when it turns
  /// true the worker finishes its in-flight trial, releases leases,
  /// and returns kDegraded. Null = never stop early.
  std::function<bool()> should_stop;
  /// Diagnostic sink (stderr in the CLI). Null = silent.
  std::function<void(const std::string&)> log;
};

enum class FleetOutcome {
  kDrained,   // grid fully journaled; finals verified/written
  kDegraded,  // stopped early (SIGTERM, I/O trouble, repeated theft) —
              // leases released, siblings finish the grid
  kError,     // unrecoverable setup/finalize failure
};

struct FleetReport {
  FleetOutcome outcome = FleetOutcome::kError;
  std::size_t trials_run = 0;      // rows this worker journaled
  std::size_t rows_discarded = 0;  // kLeaseLost: finished after theft
  std::size_t leases_broken = 0;   // stale leases this worker stole
  std::size_t quarantined = 0;     // kLeaseExpired rows synthesized
  std::size_t rows_failed = 0;     // failure rows in the drained grid
                                   // (filled when this worker finalizes)
  std::size_t rounds = 0;          // drain rounds executed
  std::size_t pressure_rounds = 0; // rounds skipped for memory pressure
  std::size_t journal_lines = 0;   // lines inspected at last merge
  bool torn_tail = false;          // any shard ended mid-line
  bool finalized = false;          // this worker wrote the finals
  std::string detail;              // degraded/error reason
};

/// Background thread rewriting every held lease with a monotonically
/// increasing beat counter, so sibling observers see the fingerprint
/// change and keep judging this worker alive. Thread starts in the
/// constructor and stops/joins in the destructor.
class Heartbeater {
 public:
  Heartbeater(LeaseLedger& ledger, double interval_seconds);
  ~Heartbeater();

  Heartbeater(const Heartbeater&) = delete;
  Heartbeater& operator=(const Heartbeater&) = delete;

  /// Start/stop heartbeating `trial_id` (claimed / finished).
  void add(std::uint64_t trial_id);
  void remove(std::uint64_t trial_id);

  /// Did a refresh observe the lease stolen (kLost)? Sticky until the
  /// trial is add()ed again.
  [[nodiscard]] bool lost(std::uint64_t trial_id) const;

  /// Refresh I/O failures so far (feeds the degraded-mode trigger).
  [[nodiscard]] std::uint64_t io_failures() const noexcept {
    return io_failures_.load();
  }

  /// One synchronous beat over the held set (test hook; the
  /// background thread calls the same path on its own cadence).
  void beat_now();

 private:
  void loop();

  LeaseLedger& ledger_;
  double interval_seconds_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::set<std::uint64_t> held_;
  std::set<std::uint64_t> lost_;
  std::uint64_t beat_ = 0;
  std::atomic<std::uint64_t> io_failures_{0};
  std::thread thread_;
};

/// One fleet worker: the drain loop described in DESIGN.md §11.
class FleetWorker {
 public:
  /// Validates the config (throws sim::SimError kBadConfig on a bad
  /// worker id, ttl/heartbeat ordering, or invalid runner policy).
  explicit FleetWorker(FleetConfig config);

  /// Drain `spec`'s grid cooperatively. `policy_text` is the runner
  /// fingerprint stored in the checkpoint (as slowcc_sweep --resume).
  [[nodiscard]] FleetReport run(const SweepSpec& spec,
                                const std::string& policy_text);

  /// Every journal shard in `dir` (canonical journal.jsonl plus
  /// journal.worker-*.jsonl), sorted by name — the merge input set.
  [[nodiscard]] static std::vector<std::string> shard_paths(
      const std::string& dir);

  /// Canonical quarantine-row error text; a pure function of the
  /// trial id and break count so any worker synthesizes the identical
  /// row bytes.
  [[nodiscard]] static std::string quarantine_error(std::uint64_t trial_id,
                                                    int breaks);

  [[nodiscard]] const FleetConfig& config() const noexcept {
    return config_;
  }

 private:
  FleetConfig config_;
};

}  // namespace slowcc::exp
