#include "exp/sweep_spec.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/seed.hpp"
#include "exp/serialize.hpp"
#include "sim/error.hpp"

namespace slowcc::exp {
namespace {

[[noreturn]] void bad(const std::string& detail) {
  throw sim::SimError(sim::SimErrc::kBadConfig, "SweepSpec", detail);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_double(std::string_view token) {
  const std::string t(trim(token));
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (t.empty() || end != t.c_str() + t.size()) {
    bad("malformed number: '" + t + "'");
  }
  return v;
}

std::uint64_t parse_u64(std::string_view token) {
  const std::string t(trim(token));
  char* end = nullptr;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  if (t.empty() || end != t.c_str() + t.size()) {
    bad("malformed integer: '" + t + "'");
  }
  return v;
}

}  // namespace

std::vector<double> parse_double_list(std::string_view text) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view token =
        text.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    if (!trim(token).empty()) out.push_back(parse_double(token));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (out.empty()) bad("empty value list");
  return out;
}

std::vector<std::string> parse_token_list(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view token =
        text.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    const std::string_view trimmed = trim(token);
    if (!trimmed.empty()) out.emplace_back(trimmed);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (out.empty()) bad("empty token list");
  return out;
}

double TrialDesc::param(std::string_view name, double fallback) const noexcept {
  for (const auto& [k, v] : params) {
    if (k == name) return v;
  }
  return fallback;
}

std::string TrialDesc::cell_key() const {
  std::string key = experiment + "|" + algorithm;
  char buf[64];
  if (bandwidth_bps > 0) {
    std::snprintf(buf, sizeof buf, "|bw=%s",
                  json_number(bandwidth_bps / 1e6).c_str());
    key += buf;
  }
  if (rtt_ms > 0) {
    std::snprintf(buf, sizeof buf, "|rtt=%s", json_number(rtt_ms).c_str());
    key += buf;
  }
  for (const auto& [k, v] : params) {
    key += "|" + k + "=" + json_number(v);
  }
  return key;
}

std::size_t SweepSpec::trial_count() const noexcept {
  const std::size_t bands = bandwidths_bps.empty() ? 1 : bandwidths_bps.size();
  const std::size_t rtts = rtts_ms.empty() ? 1 : rtts_ms.size();
  const std::size_t sweeps = sweep_values.empty() ? 1 : sweep_values.size();
  return algorithms.size() * bands * rtts * sweeps *
         static_cast<std::size_t>(trials > 0 ? trials : 0);
}

std::vector<TrialDesc> SweepSpec::expand() const {
  if (experiment.empty()) bad("no experiment named");
  if (algorithms.empty()) bad("no algorithms listed");
  if (trials < 1) bad("trials must be >= 1");
  if (duration_scale <= 0) bad("duration_scale must be > 0");
  if (sweep_param.empty() != sweep_values.empty()) {
    bad("sweep parameter name and values must be set together");
  }

  // Singleton sentinel axes (0 = "experiment default") keep the loop
  // structure uniform.
  const std::vector<double> bands =
      bandwidths_bps.empty() ? std::vector<double>{0.0} : bandwidths_bps;
  const std::vector<double> rtts =
      rtts_ms.empty() ? std::vector<double>{0.0} : rtts_ms;
  const std::vector<double> sweeps =
      sweep_values.empty() ? std::vector<double>{0.0} : sweep_values;

  std::vector<TrialDesc> out;
  out.reserve(trial_count());
  std::uint64_t id = 0;
  for (const std::string& alg : algorithms) {
    for (const double bw : bands) {
      for (const double rtt : rtts) {
        for (const double sv : sweeps) {
          for (int t = 0; t < trials; ++t) {
            TrialDesc d;
            d.trial_id = id;
            d.experiment = experiment;
            d.algorithm = alg;
            d.bandwidth_bps = bw;
            d.rtt_ms = rtt;
            for (const auto& [k, v] : fixed) d.params.emplace_back(k, v);
            if (!sweep_param.empty()) d.params.emplace_back(sweep_param, sv);
            d.trial_index = t;
            // Seed from the grid cell + replicate index, NOT from
            // expansion order, so adding an axis value does not reseed
            // unrelated cells... but cells must still never collide, so
            // hash the cell key into the base first.
            std::uint64_t cell_hash = base_seed;
            for (const char c : d.cell_key()) {
              cell_hash = derive_seed(cell_hash, static_cast<unsigned char>(c));
            }
            d.seed = derive_seed(cell_hash, static_cast<std::uint64_t>(t));
            d.duration_scale = duration_scale;
            out.push_back(std::move(d));
            ++id;
          }
        }
      }
    }
  }
  return out;
}

void SweepSpec::assign(std::string_view raw_key, std::string_view raw_value) {
  const std::string key(trim(raw_key));
  const std::string_view value = trim(raw_value);
  if (key == "experiment") {
    experiment = std::string(value);
  } else if (key == "algorithms") {
    algorithms = parse_token_list(value);
  } else if (key == "bandwidths_mbps") {
    bandwidths_bps = parse_double_list(value);
    for (double& b : bandwidths_bps) b *= 1e6;
  } else if (key == "bandwidths_bps") {
    bandwidths_bps = parse_double_list(value);
  } else if (key == "rtts_ms") {
    rtts_ms = parse_double_list(value);
  } else if (key == "trials") {
    trials = static_cast<int>(parse_u64(value));
  } else if (key == "base_seed") {
    base_seed = parse_u64(value);
  } else if (key == "duration_scale") {
    duration_scale = parse_double(value);
  } else if (key.rfind("sweep ", 0) == 0) {
    sweep_param = std::string(trim(std::string_view(key).substr(6)));
    if (sweep_param.empty()) bad("'sweep' needs a parameter name");
    sweep_values = parse_double_list(value);
  } else if (key.rfind("set ", 0) == 0) {
    const std::string name(trim(std::string_view(key).substr(4)));
    if (name.empty()) bad("'set' needs a parameter name");
    fixed[name] = parse_double(value);
  } else {
    bad("unknown spec key: '" + key + "'");
  }
}

SweepSpec SweepSpec::parse_text(std::string_view text) {
  SweepSpec spec;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (!line.empty()) {
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        bad("line " + std::to_string(line_no) + ": expected 'key = value'");
      }
      spec.assign(line.substr(0, eq), line.substr(eq + 1));
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return spec;
}

SweepSpec SweepSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) bad("cannot open spec file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_text(buf.str());
}

std::string SweepSpec::to_text() const {
  std::ostringstream out;
  out << "experiment = " << experiment << '\n';
  out << "algorithms = ";
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    out << (i ? "," : "") << algorithms[i];
  }
  out << '\n';
  const auto list = [&out](const char* key, const std::vector<double>& vs) {
    if (vs.empty()) return;
    out << key << " = ";
    for (std::size_t i = 0; i < vs.size(); ++i) {
      out << (i ? "," : "") << json_number(vs[i]);
    }
    out << '\n';
  };
  list("bandwidths_bps", bandwidths_bps);
  list("rtts_ms", rtts_ms);
  for (const auto& [k, v] : fixed) {
    out << "set " << k << " = " << json_number(v) << '\n';
  }
  if (!sweep_param.empty()) {
    out << "sweep " << sweep_param << " = ";
    for (std::size_t i = 0; i < sweep_values.size(); ++i) {
      out << (i ? "," : "") << json_number(sweep_values[i]);
    }
    out << '\n';
  }
  out << "trials = " << trials << '\n';
  out << "base_seed = " << base_seed << '\n';
  out << "duration_scale = " << json_number(duration_scale) << '\n';
  return out.str();
}

std::string SweepSpec::describe() const {
  std::ostringstream out;
  out << experiment << ": " << algorithms.size() << " alg";
  if (!bandwidths_bps.empty()) {
    out << " x " << bandwidths_bps.size() << " bw";
  }
  if (!rtts_ms.empty()) out << " x " << rtts_ms.size() << " rtt";
  if (!sweep_values.empty()) {
    out << " x " << sweep_values.size() << " " << sweep_param;
  }
  out << " x " << trials << " trials = " << trial_count() << " trials";
  return out.str();
}

}  // namespace slowcc::exp
