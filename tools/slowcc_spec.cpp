// slowcc_spec — compile, run, and golden-check declarative scenario
// specs (specs/*.toml, DESIGN.md §12).
//
//   slowcc_spec --list DIR                 one line per spec
//   slowcc_spec --run FILE [--algorithm A] [--scale S] [--seed N]
//   slowcc_spec --check DIR [--scale S]    CI gate: every spec must
//       (a) parse and validate, (b) be named after its file stem,
//       (c) produce the same trace digest under the heap and wheel
//       engines, and (d) match its committed golden digest under
//       DIR/golden/. SLOWCC_REGEN_GOLDEN=1 rewrites the goldens after
//       an intentional behavior change.
//
// Exit codes: 0 ok, 1 check/run failure, 2 usage or bad spec.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/error.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "spec/compiler.hpp"
#include "spec/scenario_spec.hpp"

using namespace slowcc;

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s --list DIR | --run FILE | --check DIR [options]\n"
               "  --algorithm TOKEN   fill the \"$algorithm\" hole (--run)\n"
               "  --scale F           duration scale (default 1 for --run, "
               "0.05 for --check)\n"
               "  --seed N            trial seed (default 1)\n"
               "  --golden DIR        golden directory (default: "
               "<specs>/golden)\n",
               argv0);
  return code;
}

std::vector<std::string> spec_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".toml") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// One deterministic run under `engine`; digest folds the trace digest
/// and the event count, mirroring the golden-trace tests.
std::uint64_t run_digest(const spec::ScenarioSpec& scenario,
                         const spec::SpecRunOptions& opt,
                         sim::EngineKind engine, spec::SpecRunResult* out) {
  sim::set_thread_default_engine(engine);
  spec::SpecRunResult result = spec::run_scenario(scenario, opt);
  sim::clear_thread_default_engine();
  std::uint64_t digest = sim::kFnvOffsetBasis;
  digest = sim::fnv1a_u64(digest, result.trace_digest);
  digest = sim::fnv1a_u64(digest, result.events);
  if (out != nullptr) *out = std::move(result);
  return digest;
}

int check_specs(const std::string& dir, const std::string& golden_dir,
                double scale, std::uint64_t seed) {
  const std::vector<std::string> files = spec_files(dir);
  if (files.empty()) {
    std::fprintf(stderr, "slowcc_spec: no *.toml specs under %s\n",
                 dir.c_str());
    return 2;
  }
  const bool regen = std::getenv("SLOWCC_REGEN_GOLDEN") != nullptr;
  if (regen) std::filesystem::create_directories(golden_dir);
  int failures = 0;
  for (const std::string& file : files) {
    const spec::ScenarioSpec scenario = spec::parse_scenario_file(file);
    const std::string stem = std::filesystem::path(file).stem().string();
    if (scenario.scenario.name != stem) {
      std::fprintf(stderr,
                   "slowcc_spec: FAIL %s: scenario name '%s' must match "
                   "the file stem '%s'\n",
                   file.c_str(), scenario.scenario.name.c_str(),
                   stem.c_str());
      ++failures;
      continue;
    }
    spec::SpecRunOptions opt;
    opt.seed = seed;
    opt.duration_scale = scale;
    spec::SpecRunResult result;
    const std::uint64_t heap =
        run_digest(scenario, opt, sim::EngineKind::kHeap, &result);
    const std::uint64_t wheel =
        run_digest(scenario, opt, sim::EngineKind::kWheel, nullptr);
    if (heap != wheel) {
      std::fprintf(stderr,
                   "slowcc_spec: FAIL %s: heap/wheel engines disagree "
                   "(0x%llx vs 0x%llx)\n",
                   file.c_str(), static_cast<unsigned long long>(heap),
                   static_cast<unsigned long long>(wheel));
      ++failures;
      continue;
    }
    const std::string golden_path =
        golden_dir + "/" + scenario.scenario.name + ".txt";
    std::ostringstream rendered;
    rendered << "slowcc.golden.v1 " << scenario.scenario.name << " 0x"
             << std::hex << heap << "\n";
    if (regen) {
      std::ofstream out(golden_path);
      if (!out.good()) {
        std::fprintf(stderr, "slowcc_spec: cannot write %s\n",
                     golden_path.c_str());
        return 2;
      }
      out << rendered.str();
      std::printf("[regen] %s: %s", file.c_str(), rendered.str().c_str());
      continue;
    }
    std::ifstream in(golden_path);
    if (!in.good()) {
      std::fprintf(stderr,
                   "slowcc_spec: FAIL %s: missing golden %s — run with "
                   "SLOWCC_REGEN_GOLDEN=1 to create it\n",
                   file.c_str(), golden_path.c_str());
      ++failures;
      continue;
    }
    std::string header;
    std::string name;
    std::string digest_text;
    in >> header >> name >> digest_text;
    const std::uint64_t pinned =
        std::strtoull(digest_text.c_str(), nullptr, 16);
    if (header != "slowcc.golden.v1" || name != scenario.scenario.name ||
        pinned != heap) {
      std::fprintf(stderr,
                   "slowcc_spec: FAIL %s: digest %s != pinned %s — if the "
                   "behavior change is intentional, regenerate with "
                   "SLOWCC_REGEN_GOLDEN=1\n",
                   file.c_str(), rendered.str().c_str(),
                   (header + " " + name + " " + digest_text).c_str());
      ++failures;
      continue;
    }
    std::printf("ok %-28s 0x%llx (%llu events)\n",
                scenario.scenario.name.c_str(),
                static_cast<unsigned long long>(heap),
                static_cast<unsigned long long>(result.events));
  }
  if (failures > 0) {
    std::fprintf(stderr, "slowcc_spec: %d spec(s) failed the check\n",
                 failures);
    return 1;
  }
  std::printf("slowcc_spec: %zu spec(s) ok\n", files.size());
  return 0;
}

int list_specs(const std::string& dir) {
  for (const std::string& file : spec_files(dir)) {
    const spec::ScenarioSpec scenario = spec::parse_scenario_file(file);
    std::printf("%-28s %s\n", scenario.scenario.name.c_str(),
                scenario.scenario.description.c_str());
  }
  return 0;
}

int run_spec(const std::string& file, const std::string& algorithm,
             double scale, std::uint64_t seed) {
  const spec::ScenarioSpec scenario = spec::parse_scenario_file(file);
  spec::SpecRunOptions opt;
  opt.algorithm = algorithm;
  opt.seed = seed;
  opt.duration_scale = scale;
  const spec::SpecRunResult result = spec::run_scenario(scenario, opt);
  std::printf("scenario   %s\n", scenario.scenario.name.c_str());
  std::printf("algorithm  %s\n",
              algorithm.empty() ? scenario.scenario.default_algorithm.c_str()
                                : algorithm.c_str());
  for (const auto& [name, value] : result.row.metrics) {
    std::printf("%-26s %g\n", name.c_str(), value);
  }
  std::printf("events     %llu\n",
              static_cast<unsigned long long>(result.events));
  std::printf("digest     0x%llx\n",
              static_cast<unsigned long long>(result.trace_digest));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string check_dir;
  std::string list_dir;
  std::string run_file;
  std::string golden_dir;
  std::string algorithm;
  double scale = -1.0;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "slowcc_spec: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else if (arg == "--check") {
      check_dir = value();
    } else if (arg == "--list") {
      list_dir = value();
    } else if (arg == "--run") {
      run_file = value();
    } else if (arg == "--golden") {
      golden_dir = value();
    } else if (arg == "--algorithm") {
      algorithm = value();
    } else if (arg == "--scale") {
      scale = std::atof(value().c_str());
    } else if (arg == "--seed") {
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "slowcc_spec: unknown option %s\n", arg.c_str());
      return usage(argv[0], 2);
    }
  }

  const int modes = (check_dir.empty() ? 0 : 1) + (list_dir.empty() ? 0 : 1) +
                    (run_file.empty() ? 0 : 1);
  if (modes != 1) return usage(argv[0], 2);

  try {
    if (!check_dir.empty()) {
      if (golden_dir.empty()) golden_dir = check_dir + "/golden";
      return check_specs(check_dir, golden_dir, scale < 0 ? 0.05 : scale,
                         seed);
    }
    if (!list_dir.empty()) return list_specs(list_dir);
    return run_spec(run_file, algorithm, scale < 0 ? 1.0 : scale, seed);
  } catch (const sim::SimError& ex) {
    std::fprintf(stderr, "slowcc_spec: %s\n", ex.what());
    return 2;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "slowcc_spec: %s\n", ex.what());
    return 2;
  }
}
