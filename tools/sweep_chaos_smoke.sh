#!/usr/bin/env bash
# Crash-safety smoke for the sweep subsystem: run a poison-experiment
# sweep with chaos injection and retries under a checkpoint, SIGKILL it
# mid-run, resume it, and require the resumed result set to be
# byte-identical to an uninterrupted --jobs 1 run of the same spec.
#
# Exercises, end to end: trial quarantine (boom=1 cells always fail),
# deterministic chaos injection (--chaos with a fixed base seed),
# bounded retries (--max-attempts), the append+flush journal with
# last-line-wins recovery, and atomic finalize.
#
# Usage: tools/sweep_chaos_smoke.sh /path/to/slowcc_sweep
set -euo pipefail

sweep="${1:?usage: sweep_chaos_smoke.sh /path/to/slowcc_sweep}"
if [[ ! -x "$sweep" ]]; then
  echo "sweep_chaos_smoke: slowcc_sweep not found at '$sweep' —" \
       "build it with: cmake --build build --target slowcc_sweep" >&2
  exit 1
fi
work="$(mktemp -d)"
# Preserve the failing command's exit code through the cleanup trap so
# callers (ctest, CI) see the real status, not rm's.
trap 'rc=$?; rm -rf "$work"; exit $rc' EXIT

# 32 trials over two cells: boom=0 (healthy, modulo chaos) and boom=1
# (always quarantined). sleep_ms keeps each trial slow enough in real
# time for the SIGKILL below to land mid-sweep on most machines; the
# test stays correct even when it lands before or after.
common=(--experiment poison --algorithms tcp
        --set sleep_ms=20 --set events=16 --sweep boom=0,1
        --trials 16 --base-seed 42
        --chaos 0.3 --max-attempts 2
        --trial-max-events 100000 --trial-wall-seconds 30
        --duration-scale 1 --quiet)

run_sweep() {
  # Exit 1 means quarantined failures were reported — expected here
  # (the boom=1 cell always fails). Anything else is a real error.
  local rc=0
  "$sweep" "$@" || rc=$?
  if [[ $rc -ne 0 && $rc -ne 1 ]]; then
    echo "sweep_chaos_smoke: FAIL (sweep exited $rc)" >&2
    exit 1
  fi
}

# Reference: uninterrupted, single-threaded, checkpointed.
run_sweep "${common[@]}" --jobs 1 --resume "$work/ref"

# Crash run: 4 workers, killed hard mid-sweep...
set +e
"$sweep" "${common[@]}" --jobs 4 --resume "$work/crash" &
pid=$!
sleep 0.12
kill -9 "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
set -e

# ...then resumed with the same command line.
run_sweep "${common[@]}" --jobs 4 --resume "$work/crash"

for f in trials.jsonl trials.csv cells.jsonl cells.csv; do
  if ! cmp -s "$work/ref/$f" "$work/crash/$f"; then
    echo "sweep_chaos_smoke: FAIL ($f differs between the uninterrupted" \
         "run and the killed+resumed run)" >&2
    diff "$work/ref/$f" "$work/crash/$f" >&2 || true
    exit 1
  fi
done

# The manifest must mark the poison cell as failed.
if ! grep -q '"status":"failed"' "$work/crash/manifest.jsonl"; then
  echo "sweep_chaos_smoke: FAIL (no failed cell in manifest.jsonl)" >&2
  exit 1
fi

echo "sweep_chaos_smoke: PASS"
