#!/usr/bin/env bash
# Race-detection gate for the ParallelRunner: build with
# ThreadSanitizer (the SLOWCC_SANITIZE=thread configuration) into a
# separate build directory, then run a multi-jobs sweep with the
# jobs=N-vs-jobs=1 determinism selfcheck plus the runner-focused unit
# tests. Any TSan report fails the run (halt_on_error below).
#
# Registered as a ctest (see tools/CMakeLists.txt) with the same skip
# discipline as sanitize_smoke: exit 77 (SKIP_RETURN_CODE) when the
# toolchain has no usable TSan runtime, and — because the nested
# rebuild costs minutes — when invoked from ctest without the opt-in:
#
#   SLOWCC_TSAN_SMOKE=1 ctest -R tsan_smoke --output-on-failure
#
# Direct invocation (tools/tsan_smoke.sh) always runs.
#
# Usage: tools/tsan_smoke.sh [build-dir]   (default: build-tsan)
set -euo pipefail

if [[ "${SLOWCC_IN_TSAN_SMOKE:-0}" == "1" ]]; then
  echo "tsan smoke: SKIP (already inside a tsan smoke run)"
  exit 77
fi
if [[ "${SLOWCC_UNDER_CTEST:-0}" == "1" \
      && "${SLOWCC_TSAN_SMOKE:-0}" != "1" ]]; then
  echo "tsan smoke: SKIP (expensive; opt in with SLOWCC_TSAN_SMOKE=1)"
  exit 77
fi
export SLOWCC_IN_TSAN_SMOKE=1

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

# Probe: compiler flag AND runtime library must both exist.
cxx="${CXX:-c++}"
probe_dir="$(mktemp -d)"
trap 'rc=$?; rm -rf "$probe_dir"; exit $rc' EXIT
if ! echo 'int main() { return 0; }' | "$cxx" -x c++ - \
    -fsanitize=thread -o "$probe_dir/probe" 2>/dev/null; then
  echo "tsan smoke: SKIP ($cxx cannot build with -fsanitize=thread)"
  exit 77
fi
if ! "$probe_dir/probe" 2>/dev/null; then
  echo "tsan smoke: SKIP (TSan binaries do not run here)"
  exit 77
fi

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSLOWCC_SANITIZE=thread
cmake --build "$build_dir" -j"$(nproc)" --target slowcc_sweep slowcc_tests

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

# A real multi-worker sweep: 4 threads racing over the work queue, with
# the byte-identity selfcheck so ordering bugs surface as diffs too.
"$build_dir/tools/slowcc_sweep" \
  --experiment static_compat --algorithms tcp,tfrc:6 \
  --trials 4 --jobs 4 --duration-scale 0.02 --selfcheck --quiet

# Runner-focused unit tests under TSan (sweep + quarantine suites).
ctest --test-dir "$build_dir" --output-on-failure \
  -R 'Sweep|Quarantine|ParallelRunner' -j"$(nproc)" || {
  echo "tsan smoke: FAIL (runner unit tests under TSan)" >&2
  exit 1
}

echo "tsan smoke: PASS"
