#!/usr/bin/env bash
# Tier-1 gate for slowcc_lint (see tools/lint/): the real tree must lint
# clean, and a synthetic violation seeded into a scratch tree must fail
# with the rule name and file:line in the output. Also sanity-checks the
# JSON reporter so CI consumers can rely on its shape.
#
# Usage: tools/lint_smoke.sh /path/to/slowcc_lint /path/to/repo-root
set -euo pipefail

lint="${1:?usage: lint_smoke.sh /path/to/slowcc_lint /path/to/repo-root}"
root="${2:?usage: lint_smoke.sh /path/to/slowcc_lint /path/to/repo-root}"

if [[ ! -x "$lint" ]]; then
  echo "lint_smoke: slowcc_lint not found at '$lint' —" \
       "build it with: cmake --build build --target slowcc_lint" >&2
  exit 1
fi

scratch="$(mktemp -d)"
trap 'rc=$?; rm -rf "$scratch"; exit $rc' EXIT

# 1. The tree itself must be clean (zero unsuppressed findings).
if ! "$lint" --root "$root" src bench tools examples; then
  echo "lint_smoke: FAIL (tree has unsuppressed lint findings, see above)" >&2
  exit 1
fi

# 2. A seeded violation must be caught, naming the rule and file:line.
mkdir -p "$scratch/src"
cat > "$scratch/src/scratch.cpp" <<'EOF'
int jitter() { return rand() % 7; }
EOF
out="$("$lint" --root "$scratch" src 2>&1)" && {
  echo "lint_smoke: FAIL (seeded rand() violation was not reported)" >&2
  exit 1
}
if ! grep -q "src/scratch.cpp:1" <<<"$out" \
   || ! grep -q "no-raw-rand" <<<"$out"; then
  echo "lint_smoke: FAIL (finding lacks rule name or file:line):" >&2
  echo "$out" >&2
  exit 1
fi

# 3. The JSON reporter must agree and be non-empty.
json="$("$lint" --root "$scratch" --format json src || true)"
if ! grep -q '"rule": "no-raw-rand"' <<<"$json"; then
  echo "lint_smoke: FAIL (JSON reporter missing the finding): $json" >&2
  exit 1
fi

# 4. Advisory findings are reported but must not fail the gate: a
# std::function seeded into src/sim/ trips no-std-function-hot-path
# (advisory) while the exit code stays 0.
mkdir -p "$scratch/src/sim"
cat > "$scratch/src/sim/hot.cpp" <<'EOF'
std::function<void()> pending_cb;
EOF
if ! out="$("$lint" --root "$scratch" src/sim 2>&1)"; then
  echo "lint_smoke: FAIL (advisory-only finding changed the exit code):" >&2
  echo "$out" >&2
  exit 1
fi
if ! grep -q "no-std-function-hot-path (advisory)" <<<"$out"; then
  echo "lint_smoke: FAIL (advisory finding was not reported):" >&2
  echo "$out" >&2
  exit 1
fi

echo "lint_smoke: PASS"
