#!/usr/bin/env bash
# Tier-1 gate for slowcc_lint (see tools/lint/): the real tree must lint
# clean, and synthetic violations seeded into a scratch tree must fail
# with the rule name and file:line in the output — one fixture per
# enforced v2 rule family (determinism, resource-pairing, and the
# hot-path family promoted alongside the pooled packet path). Also sanity-checks the JSON and SARIF
# reporters, the baseline-delta gate, and the facts cache (a warm run
# must produce byte-identical output).
#
# Usage: tools/lint_smoke.sh /path/to/slowcc_lint /path/to/repo-root
set -euo pipefail

lint="${1:?usage: lint_smoke.sh /path/to/slowcc_lint /path/to/repo-root}"
root="${2:?usage: lint_smoke.sh /path/to/slowcc_lint /path/to/repo-root}"

if [[ ! -x "$lint" ]]; then
  echo "lint_smoke: slowcc_lint not found at '$lint' —" \
       "build it with: cmake --build build --target slowcc_lint" >&2
  exit 1
fi

scratch="$(mktemp -d)"
trap 'rc=$?; rm -rf "$scratch"; exit $rc' EXIT

fail() { echo "lint_smoke: FAIL ($*)" >&2; exit 1; }

# Expect the lint run over $2... to exit 1 and mention every pattern.
expect_finding() {
  local label="$1"; shift
  local out
  out="$("$lint" "$@" 2>&1)" && fail "$label: violation was not reported"
  local pattern
  for pattern in "$label"; do
    grep -q "$pattern" <<<"$out" \
      || fail "$label: rule name missing from output: $out"
  done
}

# 1. The tree itself must be clean (zero unsuppressed findings).
if ! "$lint" --root "$root" src bench tools examples; then
  fail "tree has unsuppressed lint findings, see above"
fi

# 2. A seeded violation must be caught, naming the rule and file:line.
mkdir -p "$scratch/src"
cat > "$scratch/src/scratch.cpp" <<'EOF'
int jitter() { return rand() % 7; }
EOF
out="$("$lint" --root "$scratch" src 2>&1)" \
  && fail "seeded rand() violation was not reported"
if ! grep -q "src/scratch.cpp:1" <<<"$out" \
   || ! grep -q "no-raw-rand" <<<"$out"; then
  echo "$out" >&2
  fail "finding lacks rule name or file:line"
fi

# 3. The JSON reporter must agree and be non-empty.
json="$("$lint" --root "$scratch" --format json src || true)"
if ! grep -q '"rule": "no-raw-rand"' <<<"$json"; then
  fail "JSON reporter missing the finding: $json"
fi

# 4. The hot-path dispatch rule is enforced: a std::function seeded
# into src/sim/ trips no-std-function-hot-path and fails the gate
# (promoted from advisory once the engine hot path went fn-pointer,
# DESIGN.md §14).
mkdir -p "$scratch/src/sim"
cat > "$scratch/src/sim/hot.cpp" <<'EOF'
std::function<void()> pending_cb;
EOF
if out="$("$lint" --root "$scratch" src/sim 2>&1)"; then
  echo "$out" >&2
  fail "enforced no-std-function-hot-path finding kept exit code 0"
fi
grep -q "no-std-function-hot-path" <<<"$out" \
  || fail "hot-path std::function was not reported: $out"

# 5. One synthetic violation per new enforced rule family must exit 1
# with the rule name in the output.
family="$scratch/family"
mkdir -p "$family/src/sim"
cat > "$family/src/sim/hash.cpp" <<'EOF'
#include <unordered_map>
struct Flow {};
std::unordered_map<Flow*, int> by_flow;
EOF
expect_finding "no-unseeded-container-hash" --root "$family" src

cat > "$family/src/sim/hash.cpp" <<'EOF'
#include <cstdint>
long next_deadline(long pad) { return INT64_MAX + pad; }
EOF
expect_finding "no-time-arith-overflow" --root "$family" src

cat > "$family/src/sim/hash.cpp" <<'EOF'
class LeakyQueue {
 public:
  void enqueue(int n) { gov_.note_packet_admitted(n); }
 private:
  int gov_;
};
EOF
expect_finding "governor-charge-release" --root "$family" src

cat > "$family/src/sim/hash.cpp" <<'EOF'
#include <iostream>
#include <unordered_map>
std::unordered_map<int, int> stats;
void dump() {
  for (const auto& kv : stats) std::cout << kv.second;
}
EOF
expect_finding "no-iteration-order-leak" --root "$family" src

# 6. The hot-path allocation family is enforced: a `new` reachable
# from an enqueue fails the gate (promoted from advisory once the
# packet path went pooled, DESIGN.md §14).
cat > "$family/src/sim/hash.cpp" <<'EOF'
class ScratchQueue {
 public:
  void enqueue(int v) { slot_ = fill(v); }
 private:
  int* fill(int v) { return new int(v); }
  int* slot_ = nullptr;
};
EOF
expect_finding "no-hot-path-alloc" --root "$family" src

# 7. SARIF reporter: versioned shape with ruleId + physicalLocation, so
# the CI artifact upload stays consumable.
sarif="$("$lint" --root "$scratch" --format sarif src || true)"
for want in '"version": "2.1.0"' '"ruleId": "no-raw-rand"' \
            '"startLine": 1' '"uri": "src/scratch.cpp"'; do
  grep -qF "$want" <<<"$sarif" || fail "SARIF reporter missing $want: $sarif"
done

# 8. Baseline-delta gate: baselining the known violation makes the run
# pass; a *new* violation on top still fails.
"$lint" --root "$scratch" --write-baseline "$scratch/baseline.txt" src \
  >/dev/null 2>&1
if ! "$lint" --root "$scratch" --baseline "$scratch/baseline.txt" src \
     >/dev/null 2>&1; then
  fail "baselined finding still failed the gate"
fi
cat > "$scratch/src/fresh.cpp" <<'EOF'
int more_jitter() { return rand() % 11; }
EOF
if "$lint" --root "$scratch" --baseline "$scratch/baseline.txt" src \
     >/dev/null 2>&1; then
  fail "new finding slipped past the baseline gate"
fi

# 9. Facts cache: a warm re-run must be byte-identical to the cold run
# (the cache stores facts, not findings — cross-file rules still run).
cold="$("$lint" --root "$root" --cache "$scratch/cache" \
        src bench tools examples 2>/dev/null || true)"
warm="$("$lint" --root "$root" --cache "$scratch/cache" \
        src bench tools examples 2>/dev/null || true)"
[[ "$cold" == "$warm" ]] || fail "cache changed the findings"
[[ -n "$(ls "$scratch/cache" 2>/dev/null)" ]] || fail "cache dir left empty"

echo "lint_smoke: PASS"
