#!/usr/bin/env bash
# Smoke-test the parallel sweep subsystem: build the tree, run a tiny
# 2x2 grid (2 algorithms x 2 trials) under --jobs 4 with the
# jobs=4-vs-jobs=1 determinism selfcheck, and verify the output files
# appear. If the toolchain supports ThreadSanitizer, repeat the sweep in
# a TSan build to catch data races in the runner.
#
# Usage: tools/sweep_smoke.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="$(mktemp -d)"
# Preserve the failing command's exit code through the cleanup trap so
# callers (ctest, CI) see the real status, not rm's.
trap 'rc=$?; rm -rf "$out_dir"; exit $rc' EXIT

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j"$(nproc)" --target slowcc_sweep

sweep="$build_dir/tools/slowcc_sweep"
if [[ ! -x "$sweep" ]]; then
  echo "sweep smoke: slowcc_sweep missing at '$sweep' even after a build —" \
       "check the cmake output above (expected target: slowcc_sweep)" >&2
  exit 1
fi

"$sweep" \
  --experiment static_compat --algorithms tcp,tfrc:6 \
  --trials 2 --jobs 4 --duration-scale 0.02 \
  --selfcheck --out "$out_dir/smoke"

for f in trials.jsonl trials.csv cells.jsonl cells.csv; do
  test -s "$out_dir/smoke.$f" || {
    echo "sweep smoke: missing output $f" >&2
    exit 1
  }
done

# Optional TSan pass over the same sweep (the SLOWCC_SANITIZE option in
# the top-level CMakeLists accepts any -fsanitize= value list).
tsan_dir="$repo_root/build-tsan"
if cmake -B "$tsan_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSLOWCC_SANITIZE=thread >/dev/null 2>&1 \
   && cmake --build "$tsan_dir" -j"$(nproc)" --target slowcc_sweep \
        >/dev/null 2>&1; then
  TSAN_OPTIONS="halt_on_error=1" "$tsan_dir/tools/slowcc_sweep" \
    --experiment static_compat --algorithms tcp,tfrc:6 \
    --trials 2 --jobs 4 --duration-scale 0.02 --selfcheck --quiet
  echo "sweep smoke: TSan pass OK"
else
  echo "sweep smoke: TSan unavailable, skipped"
fi

echo "sweep smoke: PASS"
