#!/usr/bin/env bash
# Fleet chaos smoke: N slowcc_sweep --fleet worker processes drain one
# grid while being SIGKILLed, SIGSTOPped, and SIGTERMed mid-trial. The
# merged result must be byte-identical to an uninterrupted --jobs 1
# run of the same spec — journal.jsonl, trials.*, cells.* — and the
# leases directory must be gone once the grid is drained.
#
# Phases:
#   1  SIGKILL: worker a is killed hard mid-trial; worker b breaks the
#      stale lease within one TTL and finishes; a restarted worker with
#      the same id resumes cleanly against the drained directory.
#   2  SIGSTOP: a paused worker stops heartbeating; its lease goes
#      stale and is stolen; on SIGCONT the survivor discards its
#      in-flight row (lease-lost) without corrupting the journal.
#   3  SIGTERM: a terminated worker finishes its in-flight trial,
#      exits with the distinct degraded code 4, and a sibling
#      completes the grid.
#
# Usage: tools/fleet_chaos_smoke.sh /path/to/slowcc_sweep
set -euo pipefail

sweep="${1:?usage: fleet_chaos_smoke.sh /path/to/slowcc_sweep}"
if [[ ! -x "$sweep" ]]; then
  echo "fleet_chaos_smoke: slowcc_sweep not found at '$sweep' —" \
       "build it with: cmake --build build --target slowcc_sweep" >&2
  exit 1
fi
work="$(mktemp -d)"
# Preserve the failing command's exit code through the cleanup trap so
# callers (ctest, CI) see the real status, not rm's.
trap 'rc=$?; kill -CONT 0 2>/dev/null || true; rm -rf "$work"; exit $rc' EXIT

# A clean grid (no poison cells, no chaos) of deliberately slow trials:
# sleep_ms gives the signals below a wide mid-trial window while the
# simulated workload stays tiny. All rows succeed, so every run must
# exit 0 and the fleet output can be byte-compared to the golden run.
common=(--experiment poison --algorithms tcp
        --set sleep_ms=400 --set events=16
        --trials 6 --base-seed 7 --duration-scale 0.01 --jobs 1)
fleet_opts=(--lease-ttl 2 --fleet-poll 0.2 --quiet)

fail() {
  echo "fleet_chaos_smoke: FAIL ($*)" >&2
  exit 1
}

compare_outputs() {
  local dir="$1" phase="$2"
  for f in journal.jsonl trials.jsonl trials.csv cells.jsonl cells.csv; do
    if ! cmp -s "$work/ref/$f" "$dir/$f"; then
      echo "fleet_chaos_smoke: FAIL ($phase: $f differs from the" \
           "uninterrupted --jobs 1 run)" >&2
      diff "$work/ref/$f" "$dir/$f" >&2 || true
      exit 1
    fi
  done
  [[ -d "$dir/leases" ]] && fail "$phase: leases/ left behind after drain"
  return 0
}

# Golden reference: uninterrupted, single-threaded, checkpointed.
"$sweep" "${common[@]}" --resume "$work/ref" --quiet \
  || fail "reference run exited $?"

# ---- Phase 1: SIGKILL a worker mid-trial, survivor + restart drain --
"$sweep" "${common[@]}" --fleet "$work/kill" --worker-id a \
  "${fleet_opts[@]}" &
pid_a=$!
sleep 0.6   # let a claim and enter a trial
kill -9 "$pid_a" 2>/dev/null || true
wait "$pid_a" 2>/dev/null || true
[[ -d "$work/kill/leases" ]] || fail "phase 1: no lease survived the kill"

"$sweep" "${common[@]}" --fleet "$work/kill" --worker-id b \
  "${fleet_opts[@]}" 2>"$work/kill.b.log" &
pid_b=$!
# Restart the killed worker id against the same directory: it must
# either help drain or converge on an already-drained grid — never
# corrupt it.
"$sweep" "${common[@]}" --fleet "$work/kill" --worker-id a \
  "${fleet_opts[@]}" || fail "phase 1: restarted worker exited $?"
wait "$pid_b" || fail "phase 1: surviving worker exited $?"
compare_outputs "$work/kill" "phase 1 (SIGKILL)"

# ---- Phase 2: SIGSTOP a worker; its stale lease must be stolen ------
"$sweep" "${common[@]}" --fleet "$work/stop" --worker-id a \
  "${fleet_opts[@]}" &
pid_a=$!
sleep 0.6   # a is inside a trial, heartbeating
kill -STOP "$pid_a" 2>/dev/null || fail "phase 2: could not pause worker"
"$sweep" "${common[@]}" --fleet "$work/stop" --worker-id b \
  "${fleet_opts[@]}" 2>"$work/stop.b.log" \
  || fail "phase 2: stealing worker exited $?"
grep -q "leases broken" "$work/stop.b.log" || true
kill -CONT "$pid_a" 2>/dev/null || true
# The resumed worker finds its lease stolen (row discarded) or simply
# an already-drained grid; both are clean exits (0) or degraded (4).
rc=0; wait "$pid_a" || rc=$?
[[ $rc -eq 0 || $rc -eq 4 ]] \
  || fail "phase 2: resumed worker exited $rc (want 0 or 4)"
compare_outputs "$work/stop" "phase 2 (SIGSTOP)"

# ---- Phase 3: SIGTERM = graceful degrade, distinct exit code 4 ------
"$sweep" "${common[@]}" --fleet "$work/term" --worker-id a \
  "${fleet_opts[@]}" &
pid_a=$!
sleep 0.6   # a is inside a trial
kill -TERM "$pid_a" 2>/dev/null || fail "phase 3: could not TERM worker"
rc=0; wait "$pid_a" || rc=$?
[[ $rc -eq 4 ]] || fail "phase 3: SIGTERMed worker exited $rc (want 4)"
# The in-flight trial was finished and journaled before exiting.
[[ -s "$work/term/journal.worker-a.jsonl" ]] \
  || fail "phase 3: degraded worker journaled nothing"
"$sweep" "${common[@]}" --fleet "$work/term" --worker-id b \
  "${fleet_opts[@]}" || fail "phase 3: finishing worker exited $?"
compare_outputs "$work/term" "phase 3 (SIGTERM)"

echo "fleet_chaos_smoke: PASS"
