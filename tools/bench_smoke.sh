#!/usr/bin/env bash
# Smoke-test the engine perf pipeline: run bench_report against
# bench/micro_engine at a tiny --min-time so it finishes in seconds,
# then validate the emitted BENCH_engine.json (schema + both engines
# present for every required benchmark). Speedup thresholds are NOT
# enforced here — a ctest sharing the machine with the rest of the
# suite would flake; run
#   tools/ci_checks.sh bench
# for an honest, longer measurement.
#
# Usage: tools/bench_smoke.sh <bench_report-bin> <micro_engine-bin>
set -euo pipefail

bench_report="${1:?usage: bench_smoke.sh <bench_report> <micro_engine>}"
micro_engine="${2:?usage: bench_smoke.sh <bench_report> <micro_engine>}"

out_dir="$(mktemp -d)"
trap 'rc=$?; rm -rf "$out_dir"; exit $rc' EXIT

out="$out_dir/BENCH_engine.json"
"$bench_report" --bench "$micro_engine" --out "$out" --min-time 0.01
"$bench_report" --validate "$out"

echo "bench smoke: OK"
