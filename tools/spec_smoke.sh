#!/usr/bin/env bash
# Spec library smoke, in three legs:
#
#   1  Golden gate: slowcc_spec --check runs every committed spec under
#      both event engines at a short duration scale and byte-compares
#      the digests against specs/golden/ (regen: SLOWCC_REGEN_GOLDEN=1).
#   1b Packet-path gate: the same golden check repeated with
#      SLOWCC_PACKET_PATH=scalar, pinning the batched/pooled and scalar
#      packet paths to one event stream (DESIGN.md §14). The
#      saturated_dumbbell spec exists for this leg: its bottleneck never
#      goes idle, so the drain chain and propagation FIFO stay armed for
#      the whole run.
#   2  Sweep determinism: a spec-driven sweep (algorithm hole filled
#      from --algorithms, one declared [params] axis swept) must be
#      byte-identical across --jobs 4 (via --selfcheck, which replays
#      the grid at --jobs 1), and between --jobs 1 and a two-worker
#      --fleet drain of the same grid.
#
# Usage: tools/spec_smoke.sh /path/to/slowcc_spec /path/to/slowcc_sweep specs/
set -euo pipefail

spec_tool="${1:?usage: spec_smoke.sh slowcc_spec slowcc_sweep specs_dir}"
sweep="${2:?usage: spec_smoke.sh slowcc_spec slowcc_sweep specs_dir}"
specs="${3:?usage: spec_smoke.sh slowcc_spec slowcc_sweep specs_dir}"
for bin in "$spec_tool" "$sweep"; do
  if [[ ! -x "$bin" ]]; then
    echo "spec_smoke: binary not found at '$bin' — build with:" \
         "cmake --build build --target slowcc_spec slowcc_sweep" >&2
    exit 1
  fi
done
[[ -d "$specs" ]] || { echo "spec_smoke: no specs dir at '$specs'" >&2; exit 1; }

work="$(mktemp -d)"
# Preserve the failing command's exit code through the cleanup trap so
# callers (ctest, CI) see the real status, not rm's.
trap 'rc=$?; rm -rf "$work"; exit $rc' EXIT

fail() {
  echo "spec_smoke: FAIL ($*)" >&2
  exit 1
}

# ---- Leg 1: every spec parses, both engines agree, goldens match ----
"$spec_tool" --check "$specs" || fail "slowcc_spec --check exited $?"

# ---- Leg 1b: scalar packet path reproduces the same goldens ---------
[[ -f "$specs/saturated_dumbbell.toml" ]] \
  || fail "saturated_dumbbell.toml missing — the packet-path leg needs it"
SLOWCC_PACKET_PATH=scalar "$spec_tool" --check "$specs" \
  || fail "slowcc_spec --check under SLOWCC_PACKET_PATH=scalar exited $?"

# ---- Leg 2: spec-driven sweep determinism -------------------------
# wifi_jitter_burst declares the burst_loss param and leaves the flow
# algorithm as a "$algorithm" hole, so this exercises --spec + --sweep
# + --algorithms composed, exactly as EXPERIMENTS.md documents.
common=(--spec "$specs/wifi_jitter_burst.toml"
        --algorithms tcp,tfrc:6 --trials 2
        --sweep burst_loss=0.1,0.3 --base-seed 11
        --duration-scale 0.02 --quiet)

# jobs=4 vs jobs=1: --selfcheck re-runs the grid single-threaded and
# fails unless every row is byte-identical.
"$sweep" "${common[@]}" --jobs 4 --selfcheck \
  || fail "spec sweep --jobs 4 --selfcheck exited $?"

# --jobs 1 reference vs a two-worker fleet drain of the same grid.
"$sweep" "${common[@]}" --jobs 1 --resume "$work/ref" \
  || fail "spec sweep reference run exited $?"

fleet_opts=(--lease-ttl 5 --fleet-poll 0.1)
"$sweep" "${common[@]}" --fleet "$work/fleet" --worker-id a \
  "${fleet_opts[@]}" &
pid_a=$!
"$sweep" "${common[@]}" --fleet "$work/fleet" --worker-id b \
  "${fleet_opts[@]}" || fail "fleet worker b exited $?"
wait "$pid_a" || fail "fleet worker a exited $?"

for f in journal.jsonl trials.jsonl trials.csv cells.jsonl cells.csv; do
  if ! cmp -s "$work/ref/$f" "$work/fleet/$f"; then
    echo "spec_smoke: FAIL ($f differs between --jobs 1 and --fleet)" >&2
    diff "$work/ref/$f" "$work/fleet/$f" >&2 || true
    exit 1
  fi
done
[[ -d "$work/fleet/leases" ]] && fail "leases/ left behind after drain"

echo "spec_smoke: PASS"
