#!/usr/bin/env bash
# Canonical CI entry point — also pleasant to run locally before
# pushing. Chains, in order:
#
#   1. configure with warnings-as-errors (SLOWCC_WERROR=ON)
#   2. full build
#   3. slowcc_lint over the tree (the `lint` target)
#   4. clang-tidy (`tidy` target; no-op when clang-tidy is absent)
#   5. ctest tier-1 suite (includes fleet_chaos_smoke: multi-process
#      --fleet workers SIGKILLed/SIGSTOPped/SIGTERMed mid-grid must
#      converge to the --jobs 1 golden output byte-for-byte; and
#      spec_smoke: the specs/ library vs its committed golden digests
#      plus spec-driven sweep determinism; and overload_smoke: a
#      memory-bomb trial under --trial-max-bytes must quarantine as
#      resource-exhausted with peak-usage fields while the canonical
#      outputs stay byte-identical across --jobs 1/--jobs 4/--fleet)
#   6. spec library golden gate: every specs/*.toml compiled and run
#      under both event engines, digests byte-compared against
#      specs/golden/ (regen with SLOWCC_REGEN_GOLDEN=1)
#   7. engine perf report: bench_report runs the per-engine event-queue
#      micro-benchmarks plus the BM_SaturatedDumbbell packet hot-path
#      macro-bench and writes BENCH_engine.json into the build dir.
#      The wheel >= 1.5x heap and pooled >= 2x scalar floors are
#      advisory by default (warn only): wall-clock ratios between two
#      in-process benchmarks are not stable on shared/virtualized
#      runners. Set SLOWCC_ENFORCE_BENCH=1 on a dedicated quiet perf
#      runner to make both floors hard failures, or SLOWCC_SKIP_BENCH=1
#      to skip the bench step entirely.
#   8. lint baseline must stay empty: the hot-path rules were promoted
#      to enforced with tools/lint/baseline.txt driven to empty, and
#      new entries may not ride in silently — shrinking a finding means
#      fixing it, not baselining it.
#
# Usage: tools/ci_checks.sh [build-dir]   (default: build-ci)
# Environment: JOBS=<n> overrides the parallelism (default: nproc).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-ci}"
jobs="${JOBS:-$(nproc)}"

step() { echo; echo "=== ci_checks: $* ==="; }

step "configure (SLOWCC_WERROR=ON) -> $build_dir"
cmake -B "$build_dir" -S "$repo_root" -DSLOWCC_WERROR=ON

step "build (-j$jobs)"
cmake --build "$build_dir" -j"$jobs"

step "lint (slowcc_lint over src bench tools examples)"
cmake --build "$build_dir" --target lint

step "lint SARIF artifact + baseline-delta gate"
# Fails only on enforced findings absent from the committed baseline, so
# a rule rollout can land before the whole tree is clean; the SARIF file
# is the uploadable CI artifact. (The baseline itself must stay empty —
# see the growth gate at the end.)
"$build_dir/tools/slowcc_lint" --root "$repo_root" \
  --format sarif --output "$build_dir/lint.sarif" \
  --cache "$build_dir/lint-cache" \
  --baseline "$repo_root/tools/lint/baseline.txt" \
  src bench tools examples
echo "ci_checks: lint SARIF artifact at $build_dir/lint.sarif"

step "tidy (clang-tidy; no-op when unavailable)"
cmake --build "$build_dir" --target tidy

step "ctest (-j$jobs)"
ctest --test-dir "$build_dir" --output-on-failure -j"$jobs"

step "spec library golden check (slowcc_spec --check specs)"
"$build_dir/tools/slowcc_spec" --check "$repo_root/specs"

if [[ "${SLOWCC_SKIP_BENCH:-0}" != "1" ]]; then
  if [[ "${SLOWCC_ENFORCE_BENCH:-0}" == "1" ]]; then
    step "bench (BENCH_engine.json, enforcing wheel >= 1.5x heap, pooled >= 2x scalar)"
    speedup_flag="--require-speedup"
    packet_flag="--require-packet-speedup"
  else
    step "bench (BENCH_engine.json, wheel >= 1.5x heap / pooled >= 2x scalar advisory)"
    speedup_flag="--advise-speedup"
    packet_flag="--advise-packet-speedup"
  fi
  "$build_dir/tools/bench_report" \
    --bench "$build_dir/bench/micro_engine" \
    --out "$build_dir/BENCH_engine.json" --min-time 0.25 \
    --lint "$build_dir/tools/slowcc_lint" --lint-root "$repo_root"
  "$build_dir/tools/bench_report" \
    --validate "$build_dir/BENCH_engine.json" "$speedup_flag" 1.5 \
    "$packet_flag" 2.0
else
  step "bench (skipped: SLOWCC_SKIP_BENCH=1)"
fi

step "lint baseline growth gate (tools/lint/baseline.txt must stay empty)"
if grep -v '^#' "$repo_root/tools/lint/baseline.txt" | grep -q .; then
  echo "ci_checks: tools/lint/baseline.txt grew — fix the findings instead" >&2
  grep -v '^#' "$repo_root/tools/lint/baseline.txt" >&2
  exit 1
fi
echo "ci_checks: baseline empty"

echo
echo "ci_checks: ALL PASS"
