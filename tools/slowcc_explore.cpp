// slowcc_explore — run any of the library's experiments from the
// command line with custom parameters, without writing C++.
//
// Usage:
//   slowcc_explore <experiment> [key=value ...]
//
// Experiments and their keys (defaults in parentheses):
//   stabilization   algo(tfrc) gamma(256) conservative(0) bw_mbps(24)
//   fairness        algo(tfrc) gamma(6) conservative(0) period_s(2)
//                   amplitude(3) pattern(square|saw|rsaw)
//   convergence     algo(tcp) gamma(2) horizon_s(300)
//   fk              algo(tcp) gamma(2) k(20)
//   oscillation     algo(tcp) gamma(2) period_s(0.4) amplitude(3)
//   smoothness      algo(tfrc) gamma(6) pattern(mild|bursty)
//   static          algo(tcp) gamma(2) loss(0.02)
//   responsiveness  algo(tfrc) gamma(6)
//
// Common keys: seed(1)
//
// Examples:
//   slowcc_explore fairness algo=tfrc gamma=6 period_s=4 amplitude=10
//   slowcc_explore stabilization algo=rap gamma=128
//   slowcc_explore smoothness algo=sqrt gamma=2 pattern=mild
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "scenario/convergence_experiment.hpp"
#include "scenario/fairness_experiment.hpp"
#include "scenario/fk_experiment.hpp"
#include "scenario/oscillation_experiment.hpp"
#include "scenario/responsiveness_experiment.hpp"
#include "scenario/smoothness_experiment.hpp"
#include "scenario/stabilization_experiment.hpp"
#include "scenario/static_compat_experiment.hpp"

using namespace slowcc;

namespace {

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv) {
  Args out;
  for (int i = 2; i < argc; ++i) {
    const std::string kv = argv[i];
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "ignoring malformed argument '%s' (want k=v)\n",
                   kv.c_str());
      continue;
    }
    out[kv.substr(0, eq)] = kv.substr(eq + 1);
  }
  return out;
}

double get_num(const Args& a, const char* key, double def) {
  auto it = a.find(key);
  return it == a.end() ? def : std::atof(it->second.c_str());
}

std::string get_str(const Args& a, const char* key, const char* def) {
  auto it = a.find(key);
  return it == a.end() ? def : it->second;
}

scenario::FlowSpec make_spec(const Args& a, const char* default_algo,
                             double default_gamma) {
  const std::string algo = get_str(a, "algo", default_algo);
  const double gamma = get_num(a, "gamma", default_gamma);
  const bool conservative = get_num(a, "conservative", 0) != 0;

  scenario::FlowSpec spec;
  if (algo == "tcp") {
    spec = scenario::FlowSpec::tcp(gamma);
  } else if (algo == "sqrt") {
    spec = scenario::FlowSpec::sqrt(gamma);
  } else if (algo == "iiad") {
    spec = scenario::FlowSpec::iiad();
  } else if (algo == "rap") {
    spec = scenario::FlowSpec::rap(gamma);
  } else if (algo == "tfrc") {
    spec = scenario::FlowSpec::tfrc(static_cast<int>(gamma), conservative);
  } else if (algo == "tear") {
    spec = scenario::FlowSpec::tear();
  } else {
    std::fprintf(stderr, "unknown algo '%s' (tcp|sqrt|iiad|rap|tfrc|tear)\n",
                 algo.c_str());
    std::exit(2);
  }
  return spec;
}

int run_stabilization(const Args& a) {
  scenario::StabilizationConfig cfg;
  cfg.spec = make_spec(a, "tfrc", 256);
  cfg.net.bottleneck_bps = get_num(a, "bw_mbps", 24) * 1e6;
  cfg.net.seed = static_cast<std::uint64_t>(get_num(a, "seed", 1));
  cfg.cbr_stop = sim::Time::seconds(60);
  cfg.cbr_restart = sim::Time::seconds(75);
  cfg.end = sim::Time::seconds(150);
  const auto out = run_stabilization(cfg);
  std::printf("spec            : %s\n", cfg.spec.label().c_str());
  std::printf("steady loss     : %.4f\n", out.steady_loss_rate);
  std::printf("stabilization   : %.0f RTTs (%.2f s)%s\n",
              out.stabilization.stabilization_time_rtts,
              out.stabilization.stabilization_time_s,
              out.stabilization.stabilized ? "" : "  [horizon-clamped]");
  std::printf("stab. cost      : %.2f\n",
              out.stabilization.stabilization_cost);
  std::printf("peak loss       : %.3f\n", out.peak_loss_rate_after_restart);
  return 0;
}

int run_fairness(const Args& a) {
  scenario::FairnessConfig cfg;
  cfg.group_b = make_spec(a, "tfrc", 6);
  cfg.cbr_period = sim::Time::seconds(get_num(a, "period_s", 2));
  const double amplitude = get_num(a, "amplitude", 3);
  // amplitude A means available bandwidth oscillates A:1.
  cfg.cbr_peak_fraction = 1.0 - 1.0 / amplitude;
  const std::string pat = get_str(a, "pattern", "square");
  cfg.pattern = pat == "saw"    ? traffic::PatternKind::kSawtooth
                : pat == "rsaw" ? traffic::PatternKind::kReverseSawtooth
                                : traffic::PatternKind::kSquare;
  cfg.net.seed = static_cast<std::uint64_t>(get_num(a, "seed", 1));
  const auto out = run_fairness(cfg);
  std::printf("TCP vs %s, period %.2f s, %g:1 %s oscillation\n",
              cfg.group_b.label().c_str(), cfg.cbr_period.as_seconds(),
              amplitude, pat.c_str());
  std::printf("TCP normalized mean   : %.2f\n", out.group_a_mean);
  std::printf("%-6s normalized mean : %.2f\n",
              cfg.group_b.label().c_str(), out.group_b_mean);
  std::printf("utilization           : %.2f\n", out.utilization);
  return 0;
}

int run_convergence(const Args& a) {
  scenario::ConvergenceConfig cfg;
  cfg.spec = make_spec(a, "tcp", 2);
  cfg.horizon = sim::Time::seconds(get_num(a, "horizon_s", 300));
  cfg.net.seed = static_cast<std::uint64_t>(get_num(a, "seed", 1));
  const auto out = run_convergence(cfg);
  std::printf("spec: %s\n", cfg.spec.label().c_str());
  if (out.result.converged) {
    std::printf("0.1-fair convergence: %.1f s\n",
                out.result.convergence_time_s);
  } else {
    std::printf("did not converge within %.0f s\n",
                cfg.horizon.as_seconds());
  }
  std::printf("final shares: %.2f / %.2f\n", out.flow1_final_share,
              out.flow2_final_share);
  return 0;
}

int run_fk(const Args& a) {
  scenario::FkConfig cfg;
  cfg.spec = make_spec(a, "tcp", 2);
  cfg.ks = {static_cast<int>(get_num(a, "k", 20)), 200};
  cfg.stop_time = sim::Time::seconds(120);
  cfg.net.seed = static_cast<std::uint64_t>(get_num(a, "seed", 1));
  const auto out = run_fk(cfg);
  std::printf("spec: %s\n", cfg.spec.label().c_str());
  for (std::size_t i = 0; i < out.ks.size(); ++i) {
    std::printf("f(%d) = %.3f\n", out.ks[i], out.f_values[i]);
  }
  std::printf("utilization before stop: %.2f\n",
              out.utilization_before_stop);
  return 0;
}

int run_oscillation(const Args& a) {
  scenario::OscillationConfig cfg;
  cfg.spec = make_spec(a, "tcp", 2);
  cfg.on_off_length = sim::Time::seconds(get_num(a, "period_s", 0.4));
  const double amplitude = get_num(a, "amplitude", 3);
  cfg.cbr_peak_fraction = 1.0 - 1.0 / amplitude;
  cfg.net.seed = static_cast<std::uint64_t>(get_num(a, "seed", 1));
  const auto out = run_oscillation(cfg);
  std::printf("spec: %s, on/off %.2f s, %g:1\n", cfg.spec.label().c_str(),
              cfg.on_off_length.as_seconds(), amplitude);
  std::printf("aggregate fraction of available: %.2f\n",
              out.aggregate_fraction);
  std::printf("drop rate: %.3f\n", out.drop_rate);
  return 0;
}

int run_smoothness(const Args& a) {
  scenario::SmoothnessConfig cfg;
  cfg.spec = make_spec(a, "tfrc", 6);
  cfg.pattern = get_str(a, "pattern", "mild") == "bursty"
                    ? scenario::LossPattern::kMoreBursty
                    : scenario::LossPattern::kMildlyBursty;
  cfg.net.seed = static_cast<std::uint64_t>(get_num(a, "seed", 1));
  const auto out = run_smoothness(cfg);
  std::printf("spec: %s\n", cfg.spec.label().c_str());
  std::printf("smoothness : %.2f\n", out.smoothness);
  std::printf("CoV        : %.2f\n", out.cov);
  std::printf("mean rate  : %.2f Mb/s\n", out.mean_rate_bps / 1e6);
  std::printf("drops      : %lld\n",
              static_cast<long long>(out.scripted_drops));
  return 0;
}

int run_static(const Args& a) {
  scenario::StaticCompatConfig cfg;
  cfg.spec = make_spec(a, "tcp", 2);
  cfg.loss_rate = get_num(a, "loss", 0.02);
  cfg.net.seed = static_cast<std::uint64_t>(get_num(a, "seed", 1));
  const auto out = run_static_compat(cfg);
  std::printf("spec: %s at p=%.3f\n", cfg.spec.label().c_str(),
              cfg.loss_rate);
  std::printf("goodput    : %.2f Mb/s\n", out.goodput_bps / 1e6);
  std::printf("prediction : %.2f Mb/s (Padhye)\n",
              out.padhye_prediction_bps / 1e6);
  std::printf("ratio      : %.2f\n", out.ratio_to_prediction);
  return 0;
}

int run_responsiveness_cmd(const Args& a) {
  scenario::ResponsivenessConfig cfg;
  cfg.spec = make_spec(a, "tfrc", 6);
  cfg.net.seed = static_cast<std::uint64_t>(get_num(a, "seed", 1));
  const auto out = run_responsiveness(cfg);
  std::printf("spec: %s\n", cfg.spec.label().c_str());
  std::printf("responsiveness : %.0f RTTs%s\n", out.responsiveness_rtts,
              out.halved ? "" : "  [never halved]");
  std::printf("aggressiveness : %.2f pkts/RTT per RTT\n",
              out.aggressiveness_pkts_per_rtt);
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: slowcc_explore <experiment> [key=value ...]\n"
      "experiments: stabilization fairness convergence fk oscillation\n"
      "             smoothness static responsiveness\n"
      "see the header of tools/slowcc_explore.cpp for keys and examples\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const Args args = parse_args(argc, argv);
  const std::string cmd = argv[1];
  if (cmd == "stabilization") return run_stabilization(args);
  if (cmd == "fairness") return run_fairness(args);
  if (cmd == "convergence") return run_convergence(args);
  if (cmd == "fk") return run_fk(args);
  if (cmd == "oscillation") return run_oscillation(args);
  if (cmd == "smoothness") return run_smoothness(args);
  if (cmd == "static") return run_static(args);
  if (cmd == "responsiveness") return run_responsiveness_cmd(args);
  usage();
  return 2;
}
