#!/usr/bin/env bash
# Overload smoke: the membomb self-test experiment grows its event and
# packet population without bound; only the --trial-max-bytes governor
# stops it. One trial of the grid is the bomb (bomb_trial=1); the rest
# are healthy. The contract under test:
#
#   1  The bomb is quarantined as resource-exhausted after exactly one
#      half-budget retry, its row carries the peak_* usage fields, and
#      every healthy row is untouched by the governor.
#   2  The journal is byte-identical across --jobs 1, --jobs 4, and a
#      two-worker --fleet drain in which one worker is SIGKILLed while
#      the bomb is mid-flight — overload handling must not perturb the
#      determinism contract.
#
# Usage: tools/overload_smoke.sh /path/to/slowcc_sweep
set -euo pipefail

sweep="${1:?usage: overload_smoke.sh /path/to/slowcc_sweep}"
if [[ ! -x "$sweep" ]]; then
  echo "overload_smoke: slowcc_sweep not found at '$sweep' —" \
       "build it with: cmake --build build --target slowcc_sweep" >&2
  exit 1
fi
work="$(mktemp -d)"
trap 'rc=$?; rm -rf "$work"; exit $rc' EXIT

fail() {
  echo "overload_smoke: FAIL ($*)" >&2
  exit 1
}

# sleep_ms keeps each trial slow enough that the SIGKILL below lands
# mid-bomb; it is part of the spec, so the golden run pays it too.
common=(--experiment membomb --algorithms tcp
        --set bomb_trial=1 --set sleep_ms=300
        --trials 6 --base-seed 7 --trial-max-bytes 64k)

run_expect_quarantine() {
  local label="$1"; shift
  local rc=0
  "$sweep" "$@" --quiet || rc=$?
  # Exit 1 = trial failures: exactly what one quarantined bomb means.
  [[ $rc -eq 1 ]] || fail "$label: exited $rc (want 1: quarantined bomb)"
}

check_journal() {
  local journal="$1" label="$2"
  [[ -s "$journal" ]] || fail "$label: no journal at $journal"
  local bombs
  bombs=$(grep -c '"error_kind":"resource-exhausted"' "$journal") || true
  [[ "$bombs" -eq 1 ]] \
    || fail "$label: $bombs resource-exhausted rows (want exactly 1)"
  grep '"error_kind":"resource-exhausted"' "$journal" \
      | grep -q '"peak_bytes_estimate"' \
    || fail "$label: quarantined row is missing its peak-usage fields"
  grep '"error_kind":"resource-exhausted"' "$journal" \
      | grep -q '"attempts":2' \
    || fail "$label: bomb was not retried once at half budget"
  # Healthy rows must not leak governor bookkeeping into the journal.
  if grep -v '"error_kind"' "$journal" | grep -q '"peak_'; then
    fail "$label: a healthy row carries peak_* fields"
  fi
}

# Golden reference: single-threaded, checkpointed.
run_expect_quarantine "reference" "${common[@]}" --jobs 1 \
  --resume "$work/ref"
check_journal "$work/ref/journal.jsonl" "reference"

# The checkpoint journal is append-order (completion order), so it is
# only byte-stable for single-threaded and drained-fleet runs; the
# canonical contract is over the sorted trials.* / cells.* files.
compare_canonical() {
  local dir="$1" label="$2"
  for f in trials.jsonl trials.csv cells.jsonl cells.csv; do
    if ! cmp -s "$work/ref/$f" "$dir/$f"; then
      diff "$work/ref/$f" "$dir/$f" >&2 || true
      fail "$label: $f differs from the --jobs 1 run"
    fi
  done
}

# ---- Threaded run: same bytes with the admission gate in play ------
run_expect_quarantine "jobs 4" "${common[@]}" --jobs 4 \
  --resume "$work/par"
compare_canonical "$work/par" "jobs 4"
check_journal "$work/par/journal.jsonl" "jobs 4"

# ---- Fleet drain with a SIGKILL mid-bomb ---------------------------
fleet_opts=(--jobs 1 --lease-ttl 2 --fleet-poll 0.2 --quiet)
"$sweep" "${common[@]}" --fleet "$work/fleet" --worker-id a \
  "${fleet_opts[@]}" &
pid_a=$!
sleep 0.5   # worker a has claimed a slow trial
kill -9 "$pid_a" 2>/dev/null || true
wait "$pid_a" 2>/dev/null || true
rc=0
"$sweep" "${common[@]}" --fleet "$work/fleet" --worker-id b \
  "${fleet_opts[@]}" || rc=$?
[[ $rc -eq 1 ]] || fail "fleet: surviving worker exited $rc (want 1)"
[[ -d "$work/fleet/leases" ]] && fail "fleet: leases/ left after drain"
compare_canonical "$work/fleet" "fleet"
cmp -s "$work/ref/journal.jsonl" "$work/fleet/journal.jsonl" \
  || { diff "$work/ref/journal.jsonl" "$work/fleet/journal.jsonl" >&2 \
         || true
       fail "fleet: merged journal differs from the --jobs 1 run"; }
check_journal "$work/fleet/journal.jsonl" "fleet"

echo "overload_smoke: PASS"
