#!/usr/bin/env bash
# Build the full tree with AddressSanitizer + UBSan into a separate
# build directory and run the tier-1 test suite under it. Any sanitizer
# report fails the run (halt_on_error / exitcode below).
#
# Usage: tools/sanitize_smoke.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSLOWCC_SANITIZE=address,undefined
cmake --build "$build_dir" -j"$(nproc)"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"

echo "sanitize smoke: PASS"
