#!/usr/bin/env bash
# Build the full tree with AddressSanitizer + UBSan into a separate
# build directory and run the tier-1 test suite under it. Any sanitizer
# report fails the run (halt_on_error / exitcode below).
#
# Registered as a ctest (see tools/CMakeLists.txt), so it must degrade
# gracefully: exit 77 (ctest SKIP_RETURN_CODE) when the toolchain has
# no usable ASan runtime, and refuse to recurse when invoked from
# inside the sanitized build's own ctest run. Because the full rebuild
# is expensive (minutes — unaffordable inside every tier-1 ctest run,
# especially on small CI containers), the ctest invocation also skips
# unless explicitly opted in:
#
#   SLOWCC_SANITIZE_SMOKE=1 ctest -R sanitize_smoke --output-on-failure
#
# Direct invocation (tools/sanitize_smoke.sh) always runs.
#
# Usage: tools/sanitize_smoke.sh [build-dir]   (default: build-asan)
set -euo pipefail

if [[ "${SLOWCC_IN_SANITIZE_SMOKE:-0}" == "1" ]]; then
  echo "sanitize smoke: SKIP (already inside a sanitize smoke run)"
  exit 77
fi
if [[ "${SLOWCC_UNDER_CTEST:-0}" == "1" \
      && "${SLOWCC_SANITIZE_SMOKE:-0}" != "1" ]]; then
  echo "sanitize smoke: SKIP (expensive; opt in with SLOWCC_SANITIZE_SMOKE=1)"
  exit 77
fi
export SLOWCC_IN_SANITIZE_SMOKE=1

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

# Probe: can this toolchain compile AND link (runtime present) a
# sanitized binary? Distros often ship the compiler flag but not
# libasan; treat either gap as a skip, not a failure.
cxx="${CXX:-c++}"
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
if ! echo 'int main() { return 0; }' | "$cxx" -x c++ - \
    -fsanitize=address,undefined -o "$probe_dir/probe" 2>/dev/null; then
  echo "sanitize smoke: SKIP ($cxx cannot build with -fsanitize=address,undefined)"
  exit 77
fi
if ! "$probe_dir/probe" 2>/dev/null; then
  echo "sanitize smoke: SKIP (sanitized binaries do not run here)"
  exit 77
fi

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSLOWCC_SANITIZE=address,undefined
cmake --build "$build_dir" -j"$(nproc)"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"

echo "sanitize smoke: PASS"
