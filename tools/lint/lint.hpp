#pragma once

// slowcc-lint — a dependency-free static-analysis pass that enforces the
// project's determinism, resource-pairing, and error-taxonomy
// invariants (see DESIGN.md §8).
//
// v2 architecture (tools/lint/):
//   lexer/   a preprocessor-aware C++ lexer: comments, string/char/raw
//            string literals, line splices, digraphs, and `#if 0`
//            regions are handled as translation phases, not masking
//            heuristics; `#define` bodies stay in the token stream
//   index/   per-file facts (functions, calls, allocation sites,
//            unordered-container symbols, iteration sites,
//            suppressions) + the cross-TU program index built from
//            them: an include graph and a symbol/call table. Facts
//            serialize to the on-disk content-hash cache.
//   rules/   rule families over tokens + index:
//            core          v1 rule ports (clocks, PRNGs, taxonomy,
//                          float time, header hygiene + include
//                          cycles, hot-path std::function, shared
//                          writes)
//            determinism   no-unseeded-container-hash,
//                          no-iteration-order-leak,
//                          no-time-arith-overflow
//            hot-path      no-hot-path-alloc (call-table reachability
//                          from Queue::enqueue / Link or Node deliver /
//                          scheduler pop)
//            resource      governor-charge-release pairing
//
// Enforced rules gate the build; advisory rules are reported (and
// suppressible) like any other but do not fail the lint gate — the CLI
// exits non-zero only when an enforced finding survives suppression
// and, when a baseline is given, is not in the committed baseline.
//
// Suppression syntax (a reason is mandatory, rule names must be known,
// and the directive must open its comment):
//   code();  // slowcc-lint: allow(rule) reason text
//   // slowcc-lint: allow(rule-a, rule-b) reason   <- applies to next line
//   // slowcc-lint: allow-file(rule) reason        <- whole file
// A malformed suppression (unknown rule, missing reason) is itself
// reported under the reserved rule name `bad-suppression`, which cannot
// be suppressed.

#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/finding.hpp"
#include "lint/index/index.hpp"

namespace slowcc::lint {

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
  bool advisory = false;
};

/// Every rule the engine knows, in stable order (for --list-rules and
/// for validating allow() directives).
[[nodiscard]] const std::vector<RuleInfo>& all_rules();

/// True if `name` names a real rule.
[[nodiscard]] bool is_known_rule(std::string_view name);

/// Lex + analyze one file into its cacheable facts: structure
/// (functions/calls/allocs), unordered symbols, iteration sites,
/// quoted includes, suppressions, and all single-file findings
/// (pre-suppression). Pure function of (path, content) — this is the
/// unit the content-hash cache stores.
[[nodiscard]] FileFacts extract_facts(const SourceFile& source);

/// Run the cross-file rules over a batch of facts (fresh or from the
/// cache), merge with each file's local findings, apply suppressions,
/// and mark advisory rules. Findings are ordered by file, line, rule.
[[nodiscard]] std::vector<Finding> run_from_facts(
    const std::vector<FileFacts>& facts);

/// extract_facts + run_from_facts over a batch of sources. Cross-file
/// state (symbol table, call table, include graph) is built from the
/// whole batch, so pass every file of interest in one call.
[[nodiscard]] std::vector<Finding> run(const std::vector<SourceFile>& sources);

/// Engine + rule-set version stamp. Cached facts recorded under a
/// different fingerprint are discarded, so rule changes invalidate the
/// cache without a manual wipe.
[[nodiscard]] std::string_view rules_fingerprint();

// -- baselines -------------------------------------------------------
//
// A baseline is a committed set of finding fingerprints; the CLI gates
// on findings *absent* from it, so a rule rollout can land before the
// tree is fully clean. Fingerprints are line-free (rule|file|message),
// which keeps them stable across unrelated edits to the same file.

[[nodiscard]] std::string finding_fingerprint(const Finding& finding);
[[nodiscard]] std::set<std::string> parse_baseline(std::istream& in);
void write_baseline(const std::vector<Finding>& findings, std::ostream& out);

// -- reporters -------------------------------------------------------

/// JSON string-escaping used by the JSON/SARIF reporters ("\&quot;",
/// \\n, \uXXXX for other control characters). Exposed for tests.
[[nodiscard]] std::string json_escape(std::string_view text);

/// `file:line: [rule] message` + indented fix hint, one finding per
/// block; advisory findings render as `[rule (advisory)]`. Emits
/// nothing for an empty list.
void report_text(const std::vector<Finding>& findings, std::ostream& out);

/// `{"count": N, "findings": [{file, line, rule, advisory, message,
/// hint}, ...]}`.
void report_json(const std::vector<Finding>& findings, std::ostream& out);

/// Minimal SARIF 2.1.0: one run, driver `slowcc_lint` with rule
/// metadata, one result per finding (enforced -> "error", advisory ->
/// "note") with a physicalLocation. Uploadable as a CI artifact.
void report_sarif(const std::vector<Finding>& findings, std::ostream& out);

}  // namespace slowcc::lint
