#pragma once

// slowcc-lint — a dependency-free static-analysis pass that enforces the
// project's determinism and error-taxonomy invariants (see DESIGN.md §8).
//
// The engine is a token/line-level scanner, not a compiler frontend: it
// masks comments and string literals, builds a small cross-file symbol
// table for unordered containers, and then runs named rules over the
// masked source. It is deliberately heuristic — the goal is to catch
// the reproducibility hazards that code review keeps missing (wall
// clocks, raw PRNGs, unordered iteration, ad-hoc exceptions), not to be
// a type checker.
//
// Rules (each suppressible inline, see below):
//   no-wall-clock          bans time()/clock()/gettimeofday/clock_gettime
//                          and std::chrono::{system,steady,high_resolution}
//                          clocks outside src/fault/watchdog and src/exp/
//   no-raw-rand            bans rand()/srand()/std::random_device/
//                          std::mt19937-family engines; use sim::Rng
//   no-unordered-iteration flags range-for over identifiers declared as
//                          unordered_map/unordered_set anywhere in the
//                          scanned batch (iteration order is unspecified)
//   error-taxonomy         every `throw` under src/ must construct a
//                          sim::SimError (rethrow `throw;` is allowed)
//   no-float-time          flags double/float variables with unit-less
//                          time-ish names (time, now, deadline, ...);
//                          use sim::Time or an explicit _s/_ms suffix
//   header-hygiene         headers must open with #pragma once and must
//                          not contain `using namespace`
//   no-std-function-hot-path (advisory) flags std::function in the
//                          event-engine hot path (src/sim/); engines
//                          should move pooled POD entries, keeping
//                          type-erased callables at the API boundary
//   no-unguarded-shared-write flags raw write paths
//                          (ofstream, fopen/freopen/creat, ::open) in
//                          src/exp/ — checkpoint directories are shared
//                          by concurrent fleet workers, so writes must
//                          go through write_file_atomic /
//                          write_file_exclusive / JsonlAppender
//                          (enforced since the resource-governance PR;
//                          the sanctioned primitives carry suppressions)
//
// Advisory rules are reported (and suppressible) like any other, but
// they do not fail the lint gate: the CLI exits non-zero only when an
// enforced finding survives suppression.
//
// Suppression syntax (a reason is mandatory, rule names must be known,
// and the directive must open its comment):
//   code();  // slowcc-lint: allow(rule) reason text
//   // slowcc-lint: allow(rule-a, rule-b) reason   <- applies to next line
//   // slowcc-lint: allow-file(rule) reason        <- whole file
// A malformed suppression (unknown rule, missing reason) is itself
// reported under the reserved rule name `bad-suppression`, which cannot
// be suppressed.

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace slowcc::lint {

/// One diagnostic: where, which rule, what, and how to fix it.
/// Advisory findings are informational — reporters mark them and the
/// CLI does not count them toward its exit code.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;
  bool advisory = false;
};

/// A source file handed to the engine. `path` is repo-relative with
/// forward slashes ("src/sim/rng.cpp") — rule scoping keys off it.
struct SourceFile {
  std::string path;
  std::string content;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
  bool advisory = false;
};

/// Every rule the engine knows, in stable order (for --list-rules and
/// for validating allow() directives).
[[nodiscard]] const std::vector<RuleInfo>& all_rules();

/// True if `name` names a real rule.
[[nodiscard]] bool is_known_rule(std::string_view name);

/// Run all rules over the batch. Cross-file state (the unordered
/// container symbol table) is built from the whole batch, so pass every
/// file of interest in one call. Findings are ordered by file, then
/// line, then rule.
[[nodiscard]] std::vector<Finding> run(const std::vector<SourceFile>& sources);

/// JSON string-escaping used by the JSON reporter ("\&quot;", \\n, \uXXXX
/// for other control characters). Exposed for tests.
[[nodiscard]] std::string json_escape(std::string_view text);

/// `file:line: [rule] message` + indented fix hint, one finding per
/// block; advisory findings render as `[rule (advisory)]`. Emits
/// nothing for an empty list.
void report_text(const std::vector<Finding>& findings, std::ostream& out);

/// `{"count": N, "findings": [{file, line, rule, advisory, message,
/// hint}, ...]}`.
void report_json(const std::vector<Finding>& findings, std::ostream& out);

}  // namespace slowcc::lint
