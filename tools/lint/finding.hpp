#pragma once

// Shared diagnostic types for slowcc-lint. Split out of lint.hpp so the
// index/rules layers can use them without pulling in the engine API.

#include <string>

namespace slowcc::lint {

/// One diagnostic: where, which rule, what, and how to fix it.
/// Advisory findings are informational — reporters mark them and the
/// CLI does not count them toward its exit code.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;
  bool advisory = false;
};

/// A source file handed to the engine. `path` is repo-relative with
/// forward slashes ("src/sim/rng.cpp") — rule scoping keys off it.
struct SourceFile {
  std::string path;
  std::string content;
};

}  // namespace slowcc::lint
