#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "lint/lexer/lexer.hpp"
#include "lint/rules/rules.hpp"

namespace slowcc::lint {

namespace {

constexpr std::string_view kDirective = "slowcc-lint:";
constexpr std::string_view kBadSuppression = "bad-suppression";

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Parse one comment's text for a suppression directive; the directive
/// must open the comment ("// slowcc-lint: ..."), so prose that merely
/// mentions the syntax never parses as one. Malformed directives become
/// bad-suppression findings (which are themselves unsuppressible).
void parse_directive(const std::string& path, int line_no, bool line_has_code,
                     const std::string& comment, FileFacts* out) {
  const std::string trimmed = trim(comment);
  if (!starts_with(trimmed, kDirective)) return;
  std::string rest = trim(trimmed.substr(kDirective.size()));

  const auto error = [&](std::string message, std::string hint) {
    Finding f;
    f.file = path;
    f.line = line_no;
    f.rule = std::string(kBadSuppression);
    f.message = std::move(message);
    f.hint = std::move(hint);
    out->local_findings.push_back(std::move(f));
  };

  bool file_scope = false;
  if (starts_with(rest, "allow-file")) {
    file_scope = true;
    rest = trim(rest.substr(std::string_view("allow-file").size()));
  } else if (starts_with(rest, "allow")) {
    rest = trim(rest.substr(std::string_view("allow").size()));
  } else {
    error(
        "unrecognized slowcc-lint directive (expected allow(...) or "
        "allow-file(...))",
        "write: // slowcc-lint: allow(<rule>) <reason>");
    return;
  }
  if (rest.empty() || rest[0] != '(') {
    error("suppression is missing its (rule, ...) list",
          "write: // slowcc-lint: allow(<rule>) <reason>");
    return;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) {
    error("unterminated rule list in suppression",
          "write: // slowcc-lint: allow(<rule>) <reason>");
    return;
  }

  std::set<std::string> rules;
  std::stringstream list(rest.substr(1, close - 1));
  std::string item;
  while (std::getline(list, item, ',')) {
    const std::string rule = trim(item);
    if (rule.empty()) continue;
    if (!is_known_rule(rule)) {
      error("suppression names unknown rule '" + rule + "'",
            "run slowcc_lint --list-rules for valid names");
      return;
    }
    rules.insert(rule);
  }
  const std::string reason = trim(rest.substr(close + 1));
  if (rules.empty() || reason.empty()) {
    error(rules.empty() ? "suppression allows no rules"
                        : "suppression is missing its reason string",
          "every allow() needs at least one rule and a justification");
    return;
  }

  if (file_scope) {
    for (const std::string& rule : rules) out->file_allow.push_back(rule);
  } else {
    // A trailing comment guards its own line; a comment on a line of
    // its own guards the next line.
    const int target = line_has_code ? line_no : line_no + 1;
    for (const std::string& rule : rules) {
      out->line_allow.emplace_back(target, rule);
    }
  }
}

void parse_suppressions(const std::string& path, const lex::LexedSource& lx,
                        FileFacts* out) {
  // A line "has code" when any token or directive sits on it — that is
  // what decides whether a trailing directive guards its own line or
  // the next one.
  std::set<int> code_lines;
  for (const lex::Token& tok : lx.tokens) code_lines.insert(tok.line);
  for (const lex::Directive& dir : lx.directives) code_lines.insert(dir.line);
  for (const auto& [line_no, comment] : lx.comments) {
    parse_directive(path, line_no, code_lines.count(line_no) != 0, comment,
                    out);
  }
}

bool rule_is_advisory(std::string_view name) {
  for (const auto& rule : all_rules()) {
    if (rule.name == name) return rule.advisory;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      {"no-wall-clock",
       "bans wall/monotonic clock reads outside watchdog and exp deadline "
       "code"},
      {"no-raw-rand",
       "bans rand()/std::random_device/std engines; use seeded sim::Rng"},
      {"no-unordered-iteration",
       "flags range-for over unordered_map/unordered_set (order is "
       "unspecified)"},
      {"no-iteration-order-leak",
       "flags unordered iteration whose body feeds serialized output "
       "(operator<<, append/print calls) — order reaches results"},
      {"no-unseeded-container-hash",
       "flags pointer-keyed unordered containers with the default hasher; "
       "address hashing makes iteration order vary per run"},
      {"no-time-arith-overflow",
       "flags unguarded +/* on a time-horizon sentinel (Time::max(), "
       "INT64_MAX) in src/; clamp before arithmetic near the horizon"},
      {"error-taxonomy", "every throw under src/ must construct sim::SimError"},
      {"no-float-time",
       "flags unit-less double/float time variables; use sim::Time"},
      {"header-hygiene",
       "headers must open with #pragma once, avoid using-namespace, and "
       "stay out of include cycles"},
      {"no-std-function-hot-path",
       "std::function in src/sim/ and src/net/ engine code; pool POD "
       "entries and keep type erasure at the Scheduler::Callback "
       "boundary"},
      {"no-hot-path-alloc",
       "heap allocation or container growth in code reachable from "
       "Queue::enqueue / deliver / scheduler pop (call-table walk); "
       "pre-size or pool on the per-packet path"},
      {"no-unguarded-shared-write",
       "raw ofstream/fopen/::open writes in src/exp/ shared checkpoint "
       "dirs; use write_file_atomic / write_file_exclusive / JsonlAppender"},
      {"governor-charge-release",
       "a class that charges the ResourceGovernor (note_*_admitted / "
       "charge) must release on its drain path (note_*_removed / "
       "released / release)"},
  };
  return kRules;
}

bool is_known_rule(std::string_view name) {
  for (const auto& rule : all_rules()) {
    if (rule.name == name) return true;
  }
  return false;
}

std::string_view rules_fingerprint() {
  // Bump the version stamp whenever lexing, facts extraction, or rule
  // semantics change: cached facts from another fingerprint are
  // discarded, so stale caches can never hide (or invent) findings.
  return "slowcc-lint-v2.0-r14";
}

// ---------------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------------

FileFacts extract_facts(const SourceFile& source) {
  const lex::LexedSource lx = lex::lex(source.content);
  FileFacts facts;
  facts.path = source.path;
  analyze_structure(lx, &facts);
  rules::run_local(source.path, lx, &facts);
  parse_suppressions(source.path, lx, &facts);
  for (const lex::Directive& dir : lx.directives) {
    if (dir.keyword == "include" && dir.quoted_include) {
      facts.includes.push_back(dir.include_target);
    }
  }
  return facts;
}

std::vector<Finding> run_from_facts(const std::vector<FileFacts>& facts) {
  // Deterministic batch order regardless of how the caller collected
  // the files (thread completion order, directory order, ...).
  std::vector<const FileFacts*> sorted;
  sorted.reserve(facts.size());
  for (const FileFacts& file : facts) sorted.push_back(&file);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FileFacts* a, const FileFacts* b) {
                     return a->path < b->path;
                   });

  const ProgramIndex index = build_index(sorted);
  std::vector<Finding> merged;
  for (const FileFacts* file : sorted) {
    merged.insert(merged.end(), file->local_findings.begin(),
                  file->local_findings.end());
  }
  rules::run_global(sorted, index, &merged);

  // Suppression filtering against the owning file's directives.
  std::map<std::string, const FileFacts*> by_path;
  for (const FileFacts* file : sorted) by_path.emplace(file->path, file);
  std::vector<Finding> findings;
  for (Finding& finding : merged) {
    if (finding.rule != kBadSuppression) {
      const auto it = by_path.find(finding.file);
      if (it != by_path.end()) {
        const FileFacts* file = it->second;
        if (std::find(file->file_allow.begin(), file->file_allow.end(),
                      finding.rule) != file->file_allow.end()) {
          continue;
        }
        const std::pair<int, std::string> key{finding.line, finding.rule};
        if (std::find(file->line_allow.begin(), file->line_allow.end(), key) !=
            file->line_allow.end()) {
          continue;
        }
      }
      finding.advisory = rule_is_advisory(finding.rule);
    }
    findings.push_back(std::move(finding));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> run(const std::vector<SourceFile>& sources) {
  std::vector<FileFacts> facts;
  facts.reserve(sources.size());
  for (const SourceFile& source : sources) {
    facts.push_back(extract_facts(source));
  }
  return run_from_facts(facts);
}

// ---------------------------------------------------------------------------
// Baselines.
// ---------------------------------------------------------------------------

std::string finding_fingerprint(const Finding& finding) {
  // Line-free on purpose: unrelated edits above a known finding must
  // not turn it into a "new" one. rule|file|message is stable until
  // the finding itself changes.
  return finding.rule + "|" + finding.file + "|" + finding.message;
}

std::set<std::string> parse_baseline(std::istream& in) {
  std::set<std::string> fingerprints;
  std::string line;
  while (std::getline(in, line)) {
    const std::string entry = trim(line);
    if (entry.empty() || entry[0] == '#') continue;
    fingerprints.insert(entry);
  }
  return fingerprints;
}

void write_baseline(const std::vector<Finding>& findings, std::ostream& out) {
  out << "# slowcc-lint baseline — one fingerprint (rule|file|message) per "
         "line.\n"
      << "# The CI gate fails only on enforced findings absent from this "
         "file;\n"
      << "# regenerate with: slowcc_lint --write-baseline <path> ...\n";
  std::set<std::string> fingerprints;
  for (const Finding& finding : findings) {
    fingerprints.insert(finding_fingerprint(finding));
  }
  for (const std::string& fingerprint : fingerprints) {
    out << fingerprint << "\n";
  }
}

// ---------------------------------------------------------------------------
// Reporters.
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void report_text(const std::vector<Finding>& findings, std::ostream& out) {
  for (const auto& finding : findings) {
    out << finding.file << ":" << finding.line << ": [" << finding.rule
        << (finding.advisory ? " (advisory)" : "") << "] " << finding.message
        << "\n";
    if (!finding.hint.empty()) out << "    hint: " << finding.hint << "\n";
  }
}

void report_json(const std::vector<Finding>& findings, std::ostream& out) {
  out << "{\"count\": " << findings.size() << ", \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ", ";
    out << "{\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"advisory\": "
        << (f.advisory ? "true" : "false") << ", \"message\": \""
        << json_escape(f.message) << "\", \"hint\": \"" << json_escape(f.hint)
        << "\"}";
  }
  out << "]}\n";
}

void report_sarif(const std::vector<Finding>& findings, std::ostream& out) {
  out << "{\"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\", "
         "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
         "{\"name\": \"slowcc_lint\", \"rules\": [";
  const std::vector<RuleInfo>& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i != 0) out << ", ";
    out << "{\"id\": \"" << json_escape(rules[i].name)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rules[i].summary) << "\"}}";
  }
  out << "]}}, \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ", ";
    std::string text = f.message;
    if (!f.hint.empty()) text += " — " + f.hint;
    out << "{\"ruleId\": \"" << json_escape(f.rule) << "\", \"level\": \""
        << (f.advisory ? "note" : "error") << "\", \"message\": {\"text\": \""
        << json_escape(text)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]}";
  }
  out << "]}]}\n";
}

}  // namespace slowcc::lint
