#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace slowcc::lint {

namespace {

// ---------------------------------------------------------------------------
// Source masking: blank out comments, string literals, and character
// literals (preserving line structure and column positions) so rule
// matching never fires on prose or message text. Comment text is kept
// separately per line for suppression parsing.
// ---------------------------------------------------------------------------

struct MaskedLine {
  std::string code;     // literals and comments replaced by spaces
  std::string comment;  // concatenated comment text on this line
};

std::vector<MaskedLine> mask_source(const std::string& content) {
  enum class State {
    kCode,
    kString,
    kChar,
    kRawString,
    kLineComment,
    kBlockComment,
  };

  std::vector<MaskedLine> lines(1);
  State state = State::kCode;
  std::string raw_delim;  // delimiter of the active R"delim( ... )delim"
  bool escaped = false;

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      escaped = false;
      lines.emplace_back();
      continue;
    }
    MaskedLine& line = lines.back();
    switch (state) {
      case State::kCode:
        if (c == '"' && i > 0 && content[i - 1] == 'R') {
          raw_delim.clear();
          for (std::size_t j = i + 1;
               j < content.size() && content[j] != '(' && raw_delim.size() < 16;
               ++j) {
            raw_delim += content[j];
          }
          state = State::kRawString;
          line.code += ' ';
        } else if (c == '"') {
          state = State::kString;
          line.code += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          line.code += ' ';
        } else if (c == '/' && i + 1 < content.size() &&
                   content[i + 1] == '/') {
          state = State::kLineComment;
          line.code += ' ';
          ++i;  // consume the second '/' so it never reaches the comment
          line.code += ' ';
        } else if (c == '/' && i + 1 < content.size() &&
                   content[i + 1] == '*') {
          state = State::kBlockComment;
          line.code += ' ';
          ++i;  // consume '*' so "/*/" does not immediately close
          line.code += ' ';
        } else {
          line.code += c;
        }
        break;
      case State::kString:
      case State::kChar:
        line.code += ' ';
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        line.code += ' ';
        const std::string closer = ")" + raw_delim + "\"";
        if (c == ')' && content.compare(i, closer.size(), closer) == 0) {
          for (std::size_t k = 1; k < closer.size(); ++k) line.code += ' ';
          i += closer.size() - 1;
          state = State::kCode;
        }
        break;
      }
      case State::kLineComment:
        line.code += ' ';
        line.comment += c;
        break;
      case State::kBlockComment:
        line.code += ' ';
        if (c == '*' && i + 1 < content.size() && content[i + 1] == '/') {
          ++i;
          line.code += ' ';
          state = State::kCode;
        } else {
          line.comment += c;
        }
        break;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Small lexical helpers over masked code.
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find `word` in `line` at identifier boundaries, starting at `from`.
/// Returns npos when absent.
std::size_t find_word(const std::string& line, std::string_view word,
                      std::size_t from = 0) {
  while (from < line.size()) {
    const std::size_t pos = line.find(word, from);
    if (pos == std::string::npos) return std::string::npos;
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& line, std::size_t pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
    ++pos;
  }
  return pos;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// True when the word at `pos` is reached as a member (`.` / `->`) or as
/// a namespace member of anything other than `std` / the global scope.
/// `foo.time()` and `Clock::time()` are someone else's API; `time(...)`,
/// `std::time(...)`, and `::time(...)` are the libc call.
bool qualified_as_foreign_member(const std::string& line, std::size_t pos) {
  std::size_t p = pos;
  while (p > 0 &&
         std::isspace(static_cast<unsigned char>(line[p - 1])) != 0) {
    --p;
  }
  if (p == 0) return false;
  const char prev = line[p - 1];
  if (prev == '.') return true;
  if (prev == '>' && p >= 2 && line[p - 2] == '-') return true;
  if (prev == ':' && p >= 2 && line[p - 2] == ':') {
    std::size_t q = p - 2;
    while (q > 0 && ident_char(line[q - 1])) --q;
    const std::string qualifier = line.substr(q, (p - 2) - q);
    return !qualifier.empty() && qualifier != "std";
  }
  return false;
}

/// True when the identifier ending just before `pos` continues with a
/// call: optional whitespace then '('.
bool followed_by_call(const std::string& line, std::size_t end) {
  const std::size_t p = skip_spaces(line, end);
  return p < line.size() && line[p] == '(';
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

constexpr std::string_view kDirective = "slowcc-lint:";
constexpr std::string_view kBadSuppression = "bad-suppression";

struct Suppressions {
  std::set<std::string> file_rules;
  // line number (1-based) -> rules allowed on that line
  std::map<int, std::set<std::string>> line_rules;
  std::vector<Finding> errors;  // malformed directives
};

void parse_directive(const std::string& path, int line_no, bool line_has_code,
                     const std::string& comment, Suppressions* out) {
  // The directive must open the comment ("// slowcc-lint: ..."); a
  // mention elsewhere in a comment is prose, not a suppression. This
  // also keeps documentation *about* the syntax from parsing as one.
  const std::string trimmed = trim(comment);
  if (!starts_with(trimmed, kDirective)) return;
  std::string rest = trim(trimmed.substr(kDirective.size()));

  bool file_scope = false;
  if (starts_with(rest, "allow-file")) {
    file_scope = true;
    rest = trim(rest.substr(std::string_view("allow-file").size()));
  } else if (starts_with(rest, "allow")) {
    rest = trim(rest.substr(std::string_view("allow").size()));
  } else {
    out->errors.push_back(
        {path, line_no, std::string(kBadSuppression),
         "unrecognized slowcc-lint directive (expected allow(...) or "
         "allow-file(...))",
         "write: // slowcc-lint: allow(<rule>) <reason>"});
    return;
  }
  if (rest.empty() || rest[0] != '(') {
    out->errors.push_back({path, line_no, std::string(kBadSuppression),
                           "suppression is missing its (rule, ...) list",
                           "write: // slowcc-lint: allow(<rule>) <reason>"});
    return;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) {
    out->errors.push_back({path, line_no, std::string(kBadSuppression),
                           "unterminated rule list in suppression",
                           "write: // slowcc-lint: allow(<rule>) <reason>"});
    return;
  }

  std::set<std::string> rules;
  std::stringstream list(rest.substr(1, close - 1));
  std::string item;
  while (std::getline(list, item, ',')) {
    const std::string rule = trim(item);
    if (rule.empty()) continue;
    if (!is_known_rule(rule)) {
      out->errors.push_back({path, line_no, std::string(kBadSuppression),
                             "suppression names unknown rule '" + rule + "'",
                             "run slowcc_lint --list-rules for valid names"});
      return;
    }
    rules.insert(rule);
  }
  const std::string reason = trim(rest.substr(close + 1));
  if (rules.empty() || reason.empty()) {
    out->errors.push_back(
        {path, line_no, std::string(kBadSuppression),
         rules.empty() ? "suppression allows no rules"
                       : "suppression is missing its reason string",
         "every allow() needs at least one rule and a justification"});
    return;
  }

  if (file_scope) {
    out->file_rules.insert(rules.begin(), rules.end());
  } else {
    // A trailing comment guards its own line; a comment on a line of its
    // own guards the next line.
    const int target = line_has_code ? line_no : line_no + 1;
    out->line_rules[target].insert(rules.begin(), rules.end());
  }
}

// ---------------------------------------------------------------------------
// Rule scoping.
// ---------------------------------------------------------------------------

bool is_header(std::string_view path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}

bool wall_clock_exempt(std::string_view path) {
  // The Watchdog is the one component whose whole job is reading the
  // wall clock, and src/exp/ owns wall-deadline bookkeeping for sweeps.
  return path.find("src/fault/watchdog") != std::string_view::npos ||
         starts_with(path, "src/exp/");
}

bool in_src(std::string_view path) { return starts_with(path, "src/"); }

bool in_sim(std::string_view path) { return starts_with(path, "src/sim/"); }

// ---------------------------------------------------------------------------
// Individual rules. Each takes the masked lines and appends findings.
// ---------------------------------------------------------------------------

void check_wall_clock(const std::string& path,
                      const std::vector<MaskedLine>& lines,
                      std::vector<Finding>* out) {
  if (wall_clock_exempt(path)) return;
  static constexpr std::array<std::string_view, 8> kAnyUse = {
      "gettimeofday",          "clock_gettime", "timespec_get",
      "system_clock",          "steady_clock",  "high_resolution_clock",
      "localtime",             "gmtime",
  };
  static constexpr std::array<std::string_view, 2> kCallOnly = {"time",
                                                                "clock"};
  const std::string hint =
      "use sim::Time / Simulator::now(); wall clocks are only allowed in "
      "src/fault/watchdog and src/exp/ wall-deadline code";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (const auto word : kAnyUse) {
      if (find_word(code, word) != std::string::npos) {
        out->push_back({path, static_cast<int>(i + 1), "no-wall-clock",
                        "nondeterministic clock '" + std::string(word) + "'",
                        hint});
        break;
      }
    }
    for (const auto word : kCallOnly) {
      for (std::size_t pos = find_word(code, word); pos != std::string::npos;
           pos = find_word(code, word, pos + 1)) {
        if (!followed_by_call(code, pos + word.size())) continue;
        if (qualified_as_foreign_member(code, pos)) continue;
        out->push_back({path, static_cast<int>(i + 1), "no-wall-clock",
                        "call to libc '" + std::string(word) + "()'", hint});
        break;
      }
    }
  }
}

void check_raw_rand(const std::string& path,
                    const std::vector<MaskedLine>& lines,
                    std::vector<Finding>* out) {
  static constexpr std::array<std::string_view, 12> kAnyUse = {
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "ranlux24",      "ranlux48",     "knuth_b",
      "drand48",       "lrand48",      "mrand48",
  };
  static constexpr std::array<std::string_view, 4> kCallOnly = {
      "rand", "srand", "random", "srandom"};
  const std::string hint =
      "draw from a seeded sim::Rng (src/sim/rng.hpp); derive independent "
      "sub-streams with sim::derive_seed()";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (const auto word : kAnyUse) {
      if (find_word(code, word) != std::string::npos) {
        out->push_back({path, static_cast<int>(i + 1), "no-raw-rand",
                        "raw PRNG '" + std::string(word) + "'", hint});
        break;
      }
    }
    for (const auto word : kCallOnly) {
      for (std::size_t pos = find_word(code, word); pos != std::string::npos;
           pos = find_word(code, word, pos + 1)) {
        if (!followed_by_call(code, pos + word.size())) continue;
        if (qualified_as_foreign_member(code, pos)) continue;
        out->push_back({path, static_cast<int>(i + 1), "no-raw-rand",
                        "call to '" + std::string(word) + "()'", hint});
        break;
      }
    }
  }
}

/// Collect identifiers declared with an unordered container type
/// anywhere in `lines` into `symbols`.
void collect_unordered_symbols(const std::vector<MaskedLine>& lines,
                               std::set<std::string>* symbols) {
  std::string all;
  for (const auto& line : lines) {
    all += line.code;
    all += '\n';
  }
  for (const std::string_view container : {"unordered_map", "unordered_set"}) {
    for (std::size_t pos = find_word(all, container); pos != std::string::npos;
         pos = find_word(all, container, pos + 1)) {
      std::size_t p = pos + container.size();
      if (p >= all.size() || all[p] != '<') continue;
      int depth = 0;
      for (; p < all.size(); ++p) {
        if (all[p] == '<') ++depth;
        if (all[p] == '>' && --depth == 0) break;
      }
      if (depth != 0) continue;
      ++p;  // past the closing '>'
      while (p < all.size() &&
             (std::isspace(static_cast<unsigned char>(all[p])) != 0 ||
              all[p] == '&' || all[p] == '*')) {
        ++p;
      }
      if (all.compare(p, 5, "const") == 0) p = skip_spaces(all, p + 5);
      const std::size_t begin = p;
      while (p < all.size() && ident_char(all[p])) ++p;
      if (p > begin && !followed_by_call(all, p)) {
        symbols->insert(all.substr(begin, p - begin));
      }
    }
  }
}

void check_unordered_iteration(const std::string& path,
                               const std::vector<MaskedLine>& lines,
                               const std::set<std::string>& symbols,
                               std::vector<Finding>* out) {
  if (symbols.empty()) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (std::size_t pos = find_word(code, "for"); pos != std::string::npos;
         pos = find_word(code, "for", pos + 1)) {
      std::size_t p = skip_spaces(code, pos + 3);
      if (p >= code.size() || code[p] != '(') continue;
      // Join continuation lines so multi-line range-fors parse.
      std::string body;
      int depth = 0;
      std::size_t j = i;
      std::size_t k = p;
      bool closed = false;
      while (j < lines.size() && j < i + 8 && !closed) {
        const std::string& src = lines[j].code;
        for (; k < src.size(); ++k) {
          const char ch = src[k];
          if (ch == '(') {
            ++depth;
            if (depth == 1) continue;  // the range-for's own '('
          } else if (ch == ')') {
            --depth;
            if (depth == 0) {
              closed = true;
              break;
            }
          }
          body += ch;
        }
        ++j;
        k = 0;
        body += ' ';
      }
      if (!closed) continue;
      if (body.find(';') != std::string::npos) continue;  // classic for
      // Find the range-for ':' (skip '::').
      std::size_t colon = std::string::npos;
      for (std::size_t c = 0; c < body.size(); ++c) {
        if (body[c] != ':') continue;
        if (c + 1 < body.size() && body[c + 1] == ':') {
          ++c;
          continue;
        }
        if (c > 0 && body[c - 1] == ':') continue;
        colon = c;
        break;
      }
      if (colon == std::string::npos) continue;
      const std::string range = trim(body.substr(colon + 1));
      if (range.empty() || !ident_char(range.back())) continue;  // call/expr
      std::size_t b = range.size();
      while (b > 0 && ident_char(range[b - 1])) --b;
      const std::string base = range.substr(b);
      if (symbols.count(base) == 0) continue;
      out->push_back(
          {path, static_cast<int>(i + 1), "no-unordered-iteration",
           "range-for over unordered container '" + base + "'",
           "iteration order is unspecified and varies across libstdc++ "
           "versions; iterate a sorted copy or use std::map/std::set when "
           "order can reach results"});
    }
  }
}

void check_error_taxonomy(const std::string& path,
                          const std::vector<MaskedLine>& lines,
                          std::vector<Finding>* out) {
  if (!in_src(path)) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    const std::size_t pos = find_word(code, "throw");
    if (pos == std::string::npos) continue;
    std::string rest = trim(code.substr(pos + 5));
    std::size_t j = i + 1;
    while (rest.empty() && j < lines.size() && j < i + 4) {
      rest = trim(lines[j].code);
      ++j;
    }
    if (starts_with(rest, ";")) continue;  // rethrow
    std::string t = rest;
    if (starts_with(t, "slowcc::")) t = trim(t.substr(8));
    if (starts_with(t, "sim::")) t = trim(t.substr(5));
    if (starts_with(t, "SimError")) continue;
    out->push_back(
        {path, static_cast<int>(i + 1), "error-taxonomy",
         "throw bypasses the sim::SimError taxonomy",
         "throw sim::SimError(sim::SimErrc::<code>, \"<component>\", detail) "
         "so harnesses and the quarantine can dispatch on the code"});
  }
}

void check_float_time(const std::string& path,
                      const std::vector<MaskedLine>& lines,
                      std::vector<Finding>* out) {
  if (!in_src(path)) return;
  static constexpr std::array<std::string_view, 4> kBareNames = {
      "now", "when", "deadline", "timestamp"};
  static constexpr std::array<std::string_view, 8> kUnitSuffixes = {
      "_s", "_secs", "_seconds", "_ms", "_us", "_ns", "_rtts", "_rtt"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    for (const std::string_view type : {"double", "float"}) {
      for (std::size_t pos = find_word(code, type); pos != std::string::npos;
           pos = find_word(code, type, pos + 1)) {
        std::size_t p = skip_spaces(code, pos + type.size());
        const std::size_t begin = p;
        while (p < code.size() && ident_char(code[p])) ++p;
        if (p == begin) continue;
        if (followed_by_call(code, p)) continue;  // function declaration
        const std::string name = code.substr(begin, p - begin);
        if (name.find("wall") != std::string::npos) continue;
        bool unit_suffixed = false;
        for (const auto suffix : kUnitSuffixes) {
          if (ends_with(name, suffix)) unit_suffixed = true;
        }
        if (unit_suffixed) continue;
        const bool time_like =
            ends_with(name, "time") ||
            std::find(kBareNames.begin(), kBareNames.end(), name) !=
                kBareNames.end();
        if (!time_like) continue;
        out->push_back(
            {path, static_cast<int>(i + 1), "no-float-time",
             "unit-less floating-point time variable '" + name + "'",
             "store simulation time as sim::Time (integer nanoseconds); if a "
             "double is deliberate, name the unit (" + name + "_s)"});
      }
    }
  }
}

void check_std_function_hot_path(const std::string& path,
                                 const std::vector<MaskedLine>& lines,
                                 std::vector<Finding>* out) {
  // Advisory, scoped to the event engine: a std::function per entry
  // costs an allocation and an indirect call on the hottest loop in the
  // simulator. The public Scheduler::Callback boundary is fine (and
  // suppressed at its declaration); engines should move pooled POD
  // entries around it rather than introduce new type-erased state.
  if (!in_sim(path)) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (find_word(lines[i].code, "std::function") == std::string::npos) {
      continue;
    }
    out->push_back(
        {path, static_cast<int>(i + 1), "no-std-function-hot-path",
         "std::function in event-engine hot-path code",
         "store pooled POD entries (timestamp, seq, node index) in the "
         "engine and keep type-erased callables at the Scheduler::Callback "
         "API boundary; suppress with a reason if this is that boundary"});
  }
}

void check_unguarded_shared_write(const std::string& path,
                                  const std::vector<MaskedLine>& lines,
                                  std::vector<Finding>* out) {
  // Enforced, scoped to the checkpoint/fleet layer: files under src/exp/
  // write into sweep directories that concurrent fleet workers share, so
  // every write must be crash-atomic (tmp+fsync+rename), exclusive
  // (O_EXCL claim), or the sanctioned append+flush journal. A raw
  // ofstream / fopen / ::open can tear mid-write or race a sibling.
  // The blessed primitives in result_sink.cpp carry suppressions.
  if (!starts_with(path, "src/exp/")) return;
  static constexpr std::string_view kRule = "no-unguarded-shared-write";
  static constexpr std::string_view kHint =
      "route shared-directory writes through exp::write_file_atomic "
      "(tmp+fsync+rename), exp::write_file_exclusive (O_EXCL claim), or "
      "exp::JsonlAppender (append+flush journal); suppress with a reason "
      "if this line IS one of those primitives";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (find_word(code, "ofstream") != std::string::npos) {
      out->push_back({path, static_cast<int>(i + 1), std::string(kRule),
                      "raw ofstream in shared-checkpoint code can tear "
                      "mid-write",
                      std::string(kHint)});
    }
    for (const std::string_view word : {"fopen", "freopen", "creat"}) {
      for (std::size_t pos = find_word(code, word); pos != std::string::npos;
           pos = find_word(code, word, pos + 1)) {
        if (!followed_by_call(code, pos + word.size())) continue;
        if (qualified_as_foreign_member(code, pos)) continue;
        out->push_back({path, static_cast<int>(i + 1), std::string(kRule),
                        "raw " + std::string(word) +
                            "() in shared-checkpoint code bypasses the "
                            "crash-atomic write primitives",
                        std::string(kHint)});
        break;
      }
    }
    // Only the globally-qualified `::open(` spelling is flagged: bare
    // `open(` would hit Checkpoint::open declarations and member calls,
    // and `Ns::open(` / `obj.open(` are someone else's API.
    for (std::size_t pos = find_word(code, "open"); pos != std::string::npos;
         pos = find_word(code, "open", pos + 1)) {
      if (!followed_by_call(code, pos + 4)) continue;
      std::size_t p = pos;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
        --p;
      }
      if (p < 2 || code[p - 1] != ':' || code[p - 2] != ':') continue;
      if (p >= 3 && ident_char(code[p - 3])) continue;  // Ns::open / std::…
      out->push_back({path, static_cast<int>(i + 1), std::string(kRule),
                      "raw ::open() in shared-checkpoint code bypasses the "
                      "crash-atomic write primitives",
                      std::string(kHint)});
      break;
    }
  }
}

void check_header_hygiene(const std::string& path,
                          const std::vector<MaskedLine>& lines,
                          std::vector<Finding>* out) {
  if (!is_header(path)) return;
  bool pragma_seen = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string line = trim(lines[i].code);
    if (line.empty()) continue;
    pragma_seen = line == "#pragma once";
    if (!pragma_seen) {
      out->push_back({path, static_cast<int>(i + 1), "header-hygiene",
                      "header does not open with #pragma once",
                      "make '#pragma once' the first non-comment line"});
    }
    break;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    const std::size_t pos = find_word(code, "using");
    if (pos == std::string::npos) continue;
    if (find_word(code, "namespace", pos + 5) != std::string::npos) {
      out->push_back({path, static_cast<int>(i + 1), "header-hygiene",
                      "'using namespace' in a header leaks into every "
                      "includer",
                      "qualify names explicitly; headers must stay "
                      "self-contained"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      {"no-wall-clock",
       "bans wall/monotonic clock reads outside watchdog and exp deadline "
       "code"},
      {"no-raw-rand",
       "bans rand()/std::random_device/std engines; use seeded sim::Rng"},
      {"no-unordered-iteration",
       "flags range-for over unordered_map/unordered_set (order is "
       "unspecified)"},
      {"error-taxonomy",
       "every throw under src/ must construct sim::SimError"},
      {"no-float-time",
       "flags unit-less double/float time variables; use sim::Time"},
      {"header-hygiene",
       "headers must open with #pragma once and avoid using-namespace"},
      {"no-std-function-hot-path",
       "advisory: std::function in src/sim/ engine code; pool POD entries "
       "and keep type erasure at the Scheduler::Callback boundary",
       /*advisory=*/true},
      {"no-unguarded-shared-write",
       "raw ofstream/fopen/::open writes in src/exp/ shared checkpoint "
       "dirs; use write_file_atomic / write_file_exclusive / "
       "JsonlAppender"},
  };
  return kRules;
}

namespace {

bool rule_is_advisory(std::string_view name) {
  for (const auto& rule : all_rules()) {
    if (rule.name == name) return rule.advisory;
  }
  return false;
}

}  // namespace

bool is_known_rule(std::string_view name) {
  for (const auto& rule : all_rules()) {
    if (rule.name == name) return true;
  }
  return false;
}

std::vector<Finding> run(const std::vector<SourceFile>& sources) {
  std::vector<std::vector<MaskedLine>> masked;
  masked.reserve(sources.size());
  std::set<std::string> unordered_symbols;
  for (const auto& source : sources) {
    masked.push_back(mask_source(source.content));
    collect_unordered_symbols(masked.back(), &unordered_symbols);
  }

  std::vector<Finding> findings;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const std::string& path = sources[s].path;
    const std::vector<MaskedLine>& lines = masked[s];

    Suppressions suppressions;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].comment.empty()) continue;
      const bool has_code = !trim(lines[i].code).empty();
      parse_directive(path, static_cast<int>(i + 1), has_code,
                      lines[i].comment, &suppressions);
    }

    std::vector<Finding> raw;
    check_wall_clock(path, lines, &raw);
    check_raw_rand(path, lines, &raw);
    check_unordered_iteration(path, lines, unordered_symbols, &raw);
    check_error_taxonomy(path, lines, &raw);
    check_float_time(path, lines, &raw);
    check_header_hygiene(path, lines, &raw);
    check_std_function_hot_path(path, lines, &raw);
    check_unguarded_shared_write(path, lines, &raw);

    for (auto& finding : raw) {
      if (suppressions.file_rules.count(finding.rule) != 0) continue;
      const auto it = suppressions.line_rules.find(finding.line);
      if (it != suppressions.line_rules.end() &&
          it->second.count(finding.rule) != 0) {
        continue;
      }
      finding.advisory = rule_is_advisory(finding.rule);
      findings.push_back(std::move(finding));
    }
    for (auto& error : suppressions.errors) {
      findings.push_back(std::move(error));
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void report_text(const std::vector<Finding>& findings, std::ostream& out) {
  for (const auto& finding : findings) {
    out << finding.file << ":" << finding.line << ": [" << finding.rule
        << (finding.advisory ? " (advisory)" : "") << "] " << finding.message
        << "\n";
    if (!finding.hint.empty()) out << "    hint: " << finding.hint << "\n";
  }
}

void report_json(const std::vector<Finding>& findings, std::ostream& out) {
  out << "{\"count\": " << findings.size() << ", \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ", ";
    out << "{\"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << json_escape(f.rule) << "\", \"advisory\": "
        << (f.advisory ? "true" : "false") << ", \"message\": \""
        << json_escape(f.message) << "\", \"hint\": \"" << json_escape(f.hint)
        << "\"}";
  }
  out << "]}\n";
}

}  // namespace slowcc::lint
