#include <set>
#include <string>
#include <vector>

#include "lint/rules/rules.hpp"

// Hot-path rule family (advisory). The per-packet path — enqueue at a
// queue, delivery at a link/node, event pop in the scheduler — runs
// millions of times per trial; a stray `new`, `make_shared`, or
// unreserved container growth there is the difference between the
// paper's sweep finishing overnight or not (ROADMAP tracks pooled
// packet allocation). The rule walks the cross-TU call table from the
// hot-path roots and flags allocation sites in everything reachable
// within a few hops. Name-based call resolution over-approximates, so
// the rule is advisory: it points a reviewer at the packet path, it
// does not gate the build.

namespace slowcc::lint::rules::detail {

namespace {

constexpr int kMaxDepth = 3;  // hops from a hot-path root

bool hot_path_root(const FuncDef& def) {
  if (def.name == "enqueue" || def.name == "deliver") return true;
  return def.name == "pop" && def.cls.find("Scheduler") != std::string::npos;
}

std::string root_label(const FuncDef& def) {
  return def.cls.empty() ? def.name : def.cls + "::" + def.name;
}

}  // namespace

void check_hot_path_alloc(const std::vector<const FileFacts*>& facts,
                          const ProgramIndex& index,
                          std::vector<Finding>* out) {
  struct Item {
    const FuncDef* def;
    const FileFacts* file;
    std::string root;
    int depth;
  };
  std::vector<Item> queue;
  std::set<const FuncDef*> visited;
  for (const FileFacts* file : facts) {
    if (!in_src(file->path)) continue;
    for (const FuncDef& def : file->functions) {
      if (!hot_path_root(def)) continue;
      if (!visited.insert(&def).second) continue;
      queue.push_back({&def, file, root_label(def), 0});
    }
  }

  std::set<std::string> emitted;  // file|line|what — dedupe across roots
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Item item = queue[head];
    if (in_src(item.file->path)) {
      for (const AllocSite& alloc : item.def->allocs) {
        const std::string key = item.file->path + "|" +
                                std::to_string(alloc.line) + "|" + alloc.what;
        if (!emitted.insert(key).second) continue;
        const bool heap = alloc.what == "new" || alloc.what == "make_shared" ||
                          alloc.what == "make_unique";
        Finding f;
        f.file = item.file->path;
        f.line = alloc.line;
        f.rule = "no-hot-path-alloc";
        f.message =
            (heap ? "heap allocation ('" : "container growth ('") +
            alloc.what + "') reachable from hot path " + item.root;
        f.hint =
            "pre-size or pool on the per-packet path (ROADMAP: pooled "
            "packet allocation); suppress with a reason if this runs at "
            "setup/teardown only";
        out->push_back(std::move(f));
      }
    }
    if (item.depth >= kMaxDepth) continue;
    for (const CallSite& call : item.def->calls) {
      const auto it = index.functions_by_name.find(call.callee);
      if (it == index.functions_by_name.end()) continue;
      for (const ProgramIndex::FuncRef& ref : it->second) {
        if (!visited.insert(ref.def).second) continue;
        queue.push_back({ref.def, ref.file, item.root, item.depth + 1});
      }
    }
  }
}

}  // namespace slowcc::lint::rules::detail
