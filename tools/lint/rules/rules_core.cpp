#include <algorithm>
#include <array>
#include <set>

#include "lint/rules/rules.hpp"

// Core rule family: the v1 rules, re-implemented over the token stream.
// Findings must stay identical-or-better vs the v1 masked-line scanner:
// same rule names, same messages, same one-finding-per-word-per-line
// shape — minus v1's masking false positives (spliced comments, raw
// string bodies) which the lexer now removes before rules ever run.

namespace slowcc::lint::rules {

namespace detail {

using lex::TokKind;
using lex::Token;

LineMap tokens_by_line(const std::vector<Token>& toks) {
  LineMap lines;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    lines[toks[i].line].push_back(i);
  }
  return lines;
}

bool foreign_qualified(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  if (is_punct(prev, ".") || is_punct(prev, "->")) return true;
  if (is_punct(prev, "::") && i >= 2) {
    const Token& qual = toks[i - 2];
    return qual.kind == TokKind::kIdent && qual.text != "std";
  }
  return false;
}

bool next_is_call(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() && is_punct(toks[i + 1], "(");
}

void add(FileFacts* out, const std::string& path, int line,
         std::string_view rule, std::string message, std::string hint) {
  Finding f;
  f.file = path;
  f.line = line;
  f.rule = std::string(rule);
  f.message = std::move(message);
  f.hint = std::move(hint);
  out->local_findings.push_back(std::move(f));
}

namespace {

bool wall_clock_exempt(std::string_view path) {
  // The Watchdog is the one component whose whole job is reading the
  // wall clock, and src/exp/ owns wall-deadline bookkeeping for sweeps.
  return path.find("src/fault/watchdog") != std::string_view::npos ||
         starts_with(path, "src/exp/");
}

/// Shared shape of no-wall-clock / no-raw-rand: a set of words that are
/// findings on sight (at most one per line, first in `any_use` order —
/// matching v1's scan order), plus a set that must be called unqualified
/// (one finding per word per line).
void check_banned_words(const std::string& path,
                        const std::vector<Token>& toks, const LineMap& lines,
                        std::string_view rule,
                        const std::vector<std::string_view>& any_use,
                        std::string_view any_use_label,
                        const std::vector<std::string_view>& call_only,
                        std::string_view call_only_label,
                        const std::string& hint, FileFacts* out) {
  for (const auto& [line_no, idx] : lines) {
    for (const std::string_view word : any_use) {
      const bool hit = std::any_of(idx.begin(), idx.end(), [&](std::size_t i) {
        return is_ident(toks[i], word);
      });
      if (hit) {
        add(out, path, line_no, rule,
            std::string(any_use_label) + " '" + std::string(word) + "'",
            hint);
        break;
      }
    }
    for (const std::string_view word : call_only) {
      for (const std::size_t i : idx) {
        if (!is_ident(toks[i], word)) continue;
        if (!next_is_call(toks, i)) continue;
        if (foreign_qualified(toks, i)) continue;
        add(out, path, line_no, rule,
            std::string(call_only_label) + " '" + std::string(word) + "()'",
            hint);
        break;
      }
    }
  }
}

}  // namespace

void check_wall_clock(const std::string& path, const std::vector<Token>& toks,
                      const LineMap& lines, FileFacts* out) {
  if (wall_clock_exempt(path)) return;
  static const std::vector<std::string_view> kAnyUse = {
      "gettimeofday", "clock_gettime", "timespec_get",
      "system_clock", "steady_clock",  "high_resolution_clock",
      "localtime",    "gmtime",
  };
  static const std::vector<std::string_view> kCallOnly = {"time", "clock"};
  check_banned_words(
      path, toks, lines, "no-wall-clock", kAnyUse, "nondeterministic clock",
      kCallOnly, "call to libc",
      "use sim::Time / Simulator::now(); wall clocks are only allowed in "
      "src/fault/watchdog and src/exp/ wall-deadline code",
      out);
}

void check_raw_rand(const std::string& path, const std::vector<Token>& toks,
                    const LineMap& lines, FileFacts* out) {
  static const std::vector<std::string_view> kAnyUse = {
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "ranlux24",      "ranlux48",     "knuth_b",
      "drand48",       "lrand48",      "mrand48",
  };
  static const std::vector<std::string_view> kCallOnly = {"rand", "srand",
                                                          "random", "srandom"};
  check_banned_words(
      path, toks, lines, "no-raw-rand", kAnyUse, "raw PRNG", kCallOnly,
      "call to",
      "draw from a seeded sim::Rng (src/sim/rng.hpp); derive independent "
      "sub-streams with sim::derive_seed()",
      out);
}

void check_error_taxonomy(const std::string& path,
                          const std::vector<Token>& toks, const LineMap& lines,
                          FileFacts* out) {
  if (!in_src(path)) return;
  for (const auto& [line_no, idx] : lines) {
    for (const std::size_t i : idx) {
      if (!is_ident(toks[i], "throw")) continue;
      std::size_t j = i + 1;
      if (j < toks.size() && is_punct(toks[j], ";")) break;  // rethrow
      // Accept `throw [slowcc::][sim::]SimError...` — anything else
      // bypasses the taxonomy.
      if (j < toks.size() && is_ident(toks[j], "slowcc") &&
          j + 1 < toks.size() && is_punct(toks[j + 1], "::")) {
        j += 2;
      }
      if (j < toks.size() && is_ident(toks[j], "sim") && j + 1 < toks.size() &&
          is_punct(toks[j + 1], "::")) {
        j += 2;
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
          starts_with(toks[j].text, "SimError")) {
        break;
      }
      add(out, path, line_no, "error-taxonomy",
          "throw bypasses the sim::SimError taxonomy",
          "throw sim::SimError(sim::SimErrc::<code>, \"<component>\", "
          "detail) so harnesses and the quarantine can dispatch on the code");
      break;  // one finding per line, first throw wins (v1 shape)
    }
  }
}

void check_float_time(const std::string& path, const std::vector<Token>& toks,
                      const LineMap& lines, FileFacts* out) {
  if (!in_src(path)) return;
  static const std::array<std::string_view, 4> kBareNames = {
      "now", "when", "deadline", "timestamp"};
  static const std::array<std::string_view, 8> kUnitSuffixes = {
      "_s", "_secs", "_seconds", "_ms", "_us", "_ns", "_rtts", "_rtt"};
  for (const auto& [line_no, idx] : lines) {
    for (const std::size_t i : idx) {
      if (!(is_ident(toks[i], "double") || is_ident(toks[i], "float"))) {
        continue;
      }
      if (i + 1 >= toks.size() || toks[i + 1].kind != TokKind::kIdent) {
        continue;  // pointer/template use, not a named variable
      }
      if (next_is_call(toks, i + 1)) continue;  // function declaration
      const std::string& name = toks[i + 1].text;
      if (name.find("wall") != std::string::npos) continue;
      bool unit_suffixed = false;
      for (const auto suffix : kUnitSuffixes) {
        if (ends_with(name, suffix)) unit_suffixed = true;
      }
      if (unit_suffixed) continue;
      const bool time_like =
          ends_with(name, "time") ||
          std::find(kBareNames.begin(), kBareNames.end(), name) !=
              kBareNames.end();
      if (!time_like) continue;
      add(out, path, line_no, "no-float-time",
          "unit-less floating-point time variable '" + name + "'",
          "store simulation time as sim::Time (integer nanoseconds); if a "
          "double is deliberate, name the unit (" +
              name + "_s)");
    }
  }
}

void check_header_hygiene(const std::string& path, const lex::LexedSource& lx,
                          FileFacts* out) {
  if (!is_header(path)) return;
  // First content = whichever of (first token, first directive) comes
  // first; it must be `#pragma once`.
  int first_line = 0;
  if (!lx.tokens.empty()) first_line = lx.tokens.front().line;
  if (!lx.directives.empty() &&
      (first_line == 0 || lx.directives.front().line < first_line)) {
    first_line = lx.directives.front().line;
  }
  if (first_line != 0) {
    const bool pragma_first = std::any_of(
        lx.directives.begin(), lx.directives.end(), [&](const auto& dir) {
          return dir.line == first_line && dir.keyword == "pragma" &&
                 !dir.args.empty() && dir.args.front() == "once";
        });
    if (!pragma_first) {
      add(out, path, first_line, "header-hygiene",
          "header does not open with #pragma once",
          "make '#pragma once' the first non-comment line");
    }
  }
  int last_flagged_line = 0;
  for (std::size_t i = 0; i + 1 < lx.tokens.size(); ++i) {
    if (!detail::is_ident(lx.tokens[i], "using")) continue;
    if (!detail::is_ident(lx.tokens[i + 1], "namespace")) continue;
    if (lx.tokens[i].line == last_flagged_line) continue;
    last_flagged_line = lx.tokens[i].line;
    add(out, path, lx.tokens[i].line, "header-hygiene",
        "'using namespace' in a header leaks into every includer",
        "qualify names explicitly; headers must stay self-contained");
  }
}

void check_std_function_hot_path(const std::string& path,
                                 const std::vector<Token>& toks,
                                 const LineMap& lines, FileFacts* out) {
  // Advisory, scoped to the event engine and the network data path: a
  // std::function per entry costs an allocation and an indirect call on
  // the hottest loops in the simulator. The public Scheduler::Callback
  // boundary is fine (and suppressed at its declaration).
  if (!starts_with(path, "src/sim/") && !starts_with(path, "src/net/")) {
    return;
  }
  for (const auto& [line_no, idx] : lines) {
    for (const std::size_t i : idx) {
      if (!is_ident(toks[i], "function")) continue;
      if (i < 2 || !is_punct(toks[i - 1], "::") ||
          !is_ident(toks[i - 2], "std")) {
        continue;
      }
      add(out, path, line_no, "no-std-function-hot-path",
          "std::function in event-engine hot-path code",
          "store pooled POD entries (timestamp, seq, node index) in the "
          "engine and keep type-erased callables at the Scheduler::Callback "
          "API boundary; suppress with a reason if this is that boundary");
      break;
    }
  }
}

void check_unguarded_shared_write(const std::string& path,
                                  const std::vector<Token>& toks,
                                  const LineMap& lines, FileFacts* out) {
  // Enforced, scoped to the checkpoint/fleet layer: files under src/exp/
  // write into sweep directories that concurrent fleet workers share, so
  // every write must be crash-atomic (tmp+fsync+rename), exclusive
  // (O_EXCL claim), or the sanctioned append+flush journal. The blessed
  // primitives in result_sink.cpp carry suppressions.
  if (!starts_with(path, "src/exp/")) return;
  static constexpr std::string_view kRule = "no-unguarded-shared-write";
  static constexpr std::string_view kHint =
      "route shared-directory writes through exp::write_file_atomic "
      "(tmp+fsync+rename), exp::write_file_exclusive (O_EXCL claim), or "
      "exp::JsonlAppender (append+flush journal); suppress with a reason "
      "if this line IS one of those primitives";
  for (const auto& [line_no, idx] : lines) {
    const bool has_ofstream = std::any_of(
        idx.begin(), idx.end(),
        [&](std::size_t i) { return is_ident(toks[i], "ofstream"); });
    if (has_ofstream) {
      add(out, path, line_no, kRule,
          "raw ofstream in shared-checkpoint code can tear mid-write",
          std::string(kHint));
    }
    for (const std::string_view word : {"fopen", "freopen", "creat"}) {
      for (const std::size_t i : idx) {
        if (!is_ident(toks[i], word)) continue;
        if (!next_is_call(toks, i)) continue;
        if (foreign_qualified(toks, i)) continue;
        add(out, path, line_no, kRule,
            "raw " + std::string(word) +
                "() in shared-checkpoint code bypasses the crash-atomic "
                "write primitives",
            std::string(kHint));
        break;
      }
    }
    // Only the globally-qualified `::open(` spelling is flagged: bare
    // `open(` would hit Checkpoint::open declarations and member calls,
    // and `Ns::open(` / `obj.open(` are someone else's API.
    for (const std::size_t i : idx) {
      if (!is_ident(toks[i], "open")) continue;
      if (!next_is_call(toks, i)) continue;
      if (i == 0 || !is_punct(toks[i - 1], "::")) continue;
      if (i >= 2 && toks[i - 2].kind == TokKind::kIdent) continue;
      add(out, path, line_no, kRule,
          "raw ::open() in shared-checkpoint code bypasses the "
          "crash-atomic write primitives",
          std::string(kHint));
      break;
    }
  }
}

void check_include_cycles(const ProgramIndex& index,
                          std::vector<Finding>* out) {
  for (const std::vector<std::string>& cycle : find_include_cycles(index)) {
    std::string chain;
    for (const std::string& path : cycle) {
      if (!chain.empty()) chain += " <-> ";
      chain += path;
    }
    Finding f;
    f.file = cycle.front();
    f.line = 1;
    f.rule = "header-hygiene";
    f.message = "include cycle: " + chain;
    f.hint =
        "break the cycle with a forward declaration or by splitting the "
        "header";
    out->push_back(std::move(f));
  }
}

}  // namespace detail

void run_local(const std::string& path, const lex::LexedSource& lx,
               FileFacts* out) {
  const std::vector<lex::Token>& toks = lx.tokens;
  const detail::LineMap lines = detail::tokens_by_line(toks);
  detail::check_wall_clock(path, toks, lines, out);
  detail::check_raw_rand(path, toks, lines, out);
  detail::check_error_taxonomy(path, toks, lines, out);
  detail::check_float_time(path, toks, lines, out);
  detail::check_header_hygiene(path, lx, out);
  detail::check_std_function_hot_path(path, toks, lines, out);
  detail::check_unguarded_shared_write(path, toks, lines, out);
  detail::check_container_hash(path, toks, out);
  detail::check_time_arith_overflow(path, toks, lines, out);
  detail::collect_iteration_sites(toks, out);
}

void run_global(const std::vector<const FileFacts*>& facts,
                const ProgramIndex& index, std::vector<Finding>* out) {
  detail::classify_iterations(facts, index, out);
  detail::check_hot_path_alloc(facts, index, out);
  detail::check_governor_pairing(facts, index, out);
  detail::check_include_cycles(index, out);
}

}  // namespace slowcc::lint::rules
