#pragma once

// slowcc-lint rule families, running over the lexer's token stream and
// the cross-TU program index (see lint/lexer/ and lint/index/).
//
//   rules_core.cpp        v1 rule ports (clocks, PRNGs, taxonomy, float
//                         time, header hygiene, hot-path std::function,
//                         shared writes) + include-cycle hygiene +
//                         orchestration (run_local / run_global)
//   rules_determinism.cpp no-unseeded-container-hash,
//                         no-time-arith-overflow, iteration-site
//                         extraction and order-leak classification
//   rules_hotpath.cpp     no-hot-path-alloc (call-table reachability)
//   rules_resource.cpp    governor-charge-release pairing
//
// Local checks append pre-suppression findings (and facts: unordered
// symbols, iteration sites) to one file's FileFacts; global checks see
// the whole batch plus the ProgramIndex. The engine (lint.cpp) owns
// suppression filtering, advisory marking, and ordering.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/finding.hpp"
#include "lint/index/index.hpp"
#include "lint/lexer/lexer.hpp"

namespace slowcc::lint::rules {

/// Run every single-file rule over one lexed file, appending to
/// `out->local_findings` and filling the facts the global rules need.
void run_local(const std::string& path, const lex::LexedSource& lx,
               FileFacts* out);

/// Run every cross-file rule over the batch. `facts` must be in
/// deterministic (path-sorted) order.
void run_global(const std::vector<const FileFacts*>& facts,
                const ProgramIndex& index, std::vector<Finding>* out);

namespace detail {

/// 1-based physical line -> indices into the token stream.
using LineMap = std::map<int, std::vector<std::size_t>>;

[[nodiscard]] LineMap tokens_by_line(const std::vector<lex::Token>& toks);

[[nodiscard]] inline bool is_ident(const lex::Token& t, std::string_view s) {
  return t.kind == lex::TokKind::kIdent && t.text == s;
}
[[nodiscard]] inline bool is_punct(const lex::Token& t, std::string_view s) {
  return t.kind == lex::TokKind::kPunct && t.text == s;
}

/// Port of v1's qualified_as_foreign_member: true when token `i` is
/// reached as a member (`.` / `->`) or via a namespace other than
/// `std` / the global scope — `foo.time()` and `Clock::time()` are
/// someone else's API; `time(...)`, `std::time(...)`, `::time(...)`
/// are the libc call.
[[nodiscard]] bool foreign_qualified(const std::vector<lex::Token>& toks,
                                     std::size_t i);

/// True when the next token is '(' — the identifier is called.
[[nodiscard]] bool next_is_call(const std::vector<lex::Token>& toks,
                                std::size_t i);

[[nodiscard]] inline bool starts_with(std::string_view s,
                                      std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}
[[nodiscard]] inline bool ends_with(std::string_view s,
                                    std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}
[[nodiscard]] inline bool is_header(std::string_view path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}
[[nodiscard]] inline bool in_src(std::string_view path) {
  return starts_with(path, "src/");
}

void add(FileFacts* out, const std::string& path, int line,
         std::string_view rule, std::string message, std::string hint);

// -- core family (rules_core.cpp) ------------------------------------
void check_wall_clock(const std::string& path,
                      const std::vector<lex::Token>& toks,
                      const LineMap& lines, FileFacts* out);
void check_raw_rand(const std::string& path,
                    const std::vector<lex::Token>& toks, const LineMap& lines,
                    FileFacts* out);
void check_error_taxonomy(const std::string& path,
                          const std::vector<lex::Token>& toks,
                          const LineMap& lines, FileFacts* out);
void check_float_time(const std::string& path,
                      const std::vector<lex::Token>& toks,
                      const LineMap& lines, FileFacts* out);
void check_header_hygiene(const std::string& path, const lex::LexedSource& lx,
                          FileFacts* out);
void check_std_function_hot_path(const std::string& path,
                                 const std::vector<lex::Token>& toks,
                                 const LineMap& lines, FileFacts* out);
void check_unguarded_shared_write(const std::string& path,
                                  const std::vector<lex::Token>& toks,
                                  const LineMap& lines, FileFacts* out);
void check_include_cycles(const ProgramIndex& index,
                          std::vector<Finding>* out);

// -- determinism family (rules_determinism.cpp) ----------------------
void check_container_hash(const std::string& path,
                          const std::vector<lex::Token>& toks, FileFacts* out);
void check_time_arith_overflow(const std::string& path,
                               const std::vector<lex::Token>& toks,
                               const LineMap& lines, FileFacts* out);
void collect_iteration_sites(const std::vector<lex::Token>& toks,
                             FileFacts* out);
void classify_iterations(const std::vector<const FileFacts*>& facts,
                         const ProgramIndex& index, std::vector<Finding>* out);

// -- hot-path family (rules_hotpath.cpp) -----------------------------
void check_hot_path_alloc(const std::vector<const FileFacts*>& facts,
                          const ProgramIndex& index, std::vector<Finding>* out);

// -- resource-pairing family (rules_resource.cpp) --------------------
void check_governor_pairing(const std::vector<const FileFacts*>& facts,
                            const ProgramIndex& index,
                            std::vector<Finding>* out);

}  // namespace detail

}  // namespace slowcc::lint::rules
