#include <algorithm>
#include <array>
#include <set>

#include "lint/rules/rules.hpp"

// Determinism rule family. The paper's results are trajectories of a
// discrete-event simulation; anything whose value or order depends on
// the process (addresses, hash seeds, wall time) can silently change a
// figure between runs. Three rules:
//
//   no-unseeded-container-hash  pointer-keyed unordered containers hash
//                               addresses -> per-run iteration order
//   no-iteration-order-leak     range-for over an unordered container
//                               whose body feeds serialized output
//   no-time-arith-overflow      unguarded +/* on a time-horizon
//                               sentinel (Time::max(), INT64_MAX)
//
// plus the iteration-site extraction shared with the v1
// no-unordered-iteration rule (classification is global: the symbol
// table spans the whole batch).

namespace slowcc::lint::rules::detail {

using lex::TokKind;
using lex::Token;

namespace {

bool unordered_container(const std::string& text) {
  return text == "unordered_map" || text == "unordered_set" ||
         text == "unordered_multimap" || text == "unordered_multiset";
}

bool map_like(const std::string& text) {
  return text == "unordered_map" || text == "unordered_multimap";
}

}  // namespace

void check_container_hash(const std::string& path,
                          const std::vector<Token>& toks, FileFacts* out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !unordered_container(toks[i].text)) {
      continue;
    }
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "<")) continue;
    // Walk the template argument list, splitting at top-level commas.
    int angle = 0;
    std::size_t close = toks.size();
    std::vector<std::size_t> arg_ends;  // token index one past each arg
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (is_punct(toks[j], "<")) ++angle;
      if (is_punct(toks[j], ">") && --angle == 0) {
        close = j;
        arg_ends.push_back(j);
        break;
      }
      if (angle == 1 && is_punct(toks[j], ",")) arg_ends.push_back(j);
      if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) break;
    }
    if (close == toks.size()) continue;

    // Key type = first template argument; a trailing '*' means the hash
    // is over a pointer value, i.e. over an allocation address.
    const std::size_t key_end = arg_ends.front();
    const bool pointer_key =
        key_end > i + 2 && is_punct(toks[key_end - 1], "*");
    // >2 args on a map (>1 on a set) means a custom hasher was supplied
    // — the author took ownership of hashing, so stay quiet.
    const std::size_t max_default_args = map_like(toks[i].text) ? 2 : 1;
    if (pointer_key && arg_ends.size() <= max_default_args) {
      add(out, path, toks[i].line, "no-unseeded-container-hash",
          "pointer-keyed " + toks[i].text +
              " hashes allocation addresses; its iteration order varies "
              "per run",
          "key on a stable id (index, flow id, name) or use std::map with "
          "an explicit comparator; suppress with a reason if the container "
          "is never iterated or serialized");
    }

    // Symbol collection for the iteration rules (v1 parity: only the
    // non-multi containers were tracked).
    if (toks[i].text != "unordered_map" && toks[i].text != "unordered_set") {
      continue;
    }
    std::size_t k = close + 1;
    while (k < toks.size() &&
           (is_punct(toks[k], "&") || is_punct(toks[k], "*") ||
            is_ident(toks[k], "const"))) {
      ++k;
    }
    if (k >= toks.size() || toks[k].kind != TokKind::kIdent) continue;
    if (next_is_call(toks, k)) continue;  // function returning a container
    const std::string& name = toks[k].text;
    if (std::find(out->unordered_symbols.begin(), out->unordered_symbols.end(),
                  name) == out->unordered_symbols.end()) {
      out->unordered_symbols.push_back(name);
    }
  }
}

void check_time_arith_overflow(const std::string& path,
                               const std::vector<Token>& toks,
                               const LineMap& lines, FileFacts* out) {
  if (!in_src(path)) return;
  std::set<int> flagged;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Recognize a horizon sentinel ending at token `end`, starting at
    // token `start` (so adjacency checks can look one token past each
    // side of the whole qualified expression).
    std::size_t start = toks.size();
    std::size_t end = 0;
    std::string label;
    if (is_ident(toks[i], "INT64_MAX")) {
      start = i;
      end = i;
      label = "INT64_MAX";
    } else if (is_ident(toks[i], "max") && i >= 2 &&
               is_punct(toks[i - 1], "::") && i + 2 < toks.size() &&
               is_punct(toks[i + 1], "(") && is_punct(toks[i + 2], ")")) {
      if (is_ident(toks[i - 2], "Time")) {
        start = i - 2;
        label = "Time::max()";
      } else if (is_punct(toks[i - 2], ">")) {
        // std::numeric_limits<...>::max()
        int angle = 1;
        std::size_t b = i - 2;
        while (b > 0 && angle > 0) {
          --b;
          if (is_punct(toks[b], ">")) ++angle;
          if (is_punct(toks[b], "<")) --angle;
        }
        if (angle == 0 && b > 0 && is_ident(toks[b - 1], "numeric_limits")) {
          start = b - 1;
          label = "numeric_limits<>::max()";
        }
      }
      if (start != toks.size()) {
        end = i + 2;
        // Fold a leading sim:: / std:: qualifier into the expression.
        while (start >= 2 && is_punct(toks[start - 1], "::") &&
               toks[start - 2].kind == TokKind::kIdent) {
          start -= 2;
        }
      }
    }
    if (start == toks.size() || end == 0) continue;

    // Guarded uses: a min/clamp or a conditional on the same line means
    // the author is already handling the horizon.
    const int line_no = toks[i].line;
    const auto line_it = lines.find(line_no);
    bool guarded = false;
    if (line_it != lines.end()) {
      for (const std::size_t j : line_it->second) {
        if (is_ident(toks[j], "min") || is_ident(toks[j], "clamp") ||
            is_punct(toks[j], "?")) {
          guarded = true;
          break;
        }
      }
    }
    if (guarded || flagged.count(line_no) != 0) continue;

    std::string op;
    if (start > 0 &&
        (is_punct(toks[start - 1], "+") || is_punct(toks[start - 1], "*"))) {
      op = toks[start - 1].text;
    } else if (start > 1 && is_punct(toks[start - 1], "=") &&
               (is_punct(toks[start - 2], "+") ||
                is_punct(toks[start - 2], "*"))) {
      op = toks[start - 2].text + "=";  // compound assignment
    } else if (end + 1 < toks.size() && (is_punct(toks[end + 1], "+") ||
                                         is_punct(toks[end + 1], "*"))) {
      op = toks[end + 1].text;
    }
    if (op.empty()) continue;

    flagged.insert(line_no);
    add(out, path, line_no, "no-time-arith-overflow",
        "unguarded '" + op + "' on time-horizon sentinel " + label +
            " overflows sim::Time",
        "clamp against the horizon (std::min / Time::saturating ops) or "
        "check remaining headroom before adding or scaling near "
        "sim::Time::max()");
  }
}

void collect_iteration_sites(const std::vector<Token>& toks, FileFacts* out) {
  static const std::array<std::string_view, 8> kLeakCalls = {
      "push_back", "emplace_back", "append", "insert",
      "printf",    "fprintf",      "fputs",  "write"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    int depth = 0;
    std::size_t close = toks.size();
    std::size_t colon = toks.size();
    bool classic = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      if (is_punct(toks[j], ")") && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && is_punct(toks[j], ";")) classic = true;
      if (depth == 1 && colon == toks.size() && is_punct(toks[j], ":")) {
        colon = j;  // "::" lexes as one token, so a bare ':' is the range
      }
    }
    if (close == toks.size() || classic || colon == toks.size()) continue;
    // The range expression must *end* in a plain identifier: `m` or
    // `obj.map_` iterate a named container; `items()` is a call whose
    // result we cannot resolve.
    if (toks[close - 1].kind != TokKind::kIdent) continue;

    IterationSite site;
    site.line = toks[i].line;
    site.base = toks[close - 1].text;

    // Body scan (braced block, or single statement up to ';') for
    // output sinks: operator<< or an append/print call.
    std::size_t body_begin = close + 1;
    std::size_t body_end = body_begin;
    if (body_begin < toks.size() && is_punct(toks[body_begin], "{")) {
      int braces = 0;
      for (std::size_t j = body_begin; j < toks.size(); ++j) {
        if (is_punct(toks[j], "{")) ++braces;
        if (is_punct(toks[j], "}") && --braces == 0) {
          body_end = j;
          break;
        }
      }
      ++body_begin;
    } else {
      while (body_end < toks.size() && !is_punct(toks[body_end], ";")) {
        ++body_end;
      }
    }
    for (std::size_t j = body_begin; j + 1 <= body_end && j < toks.size();
         ++j) {
      if (is_punct(toks[j], "<") && j + 1 < toks.size() &&
          is_punct(toks[j + 1], "<") && toks[j + 1].line == toks[j].line &&
          toks[j + 1].col == toks[j].col + 1) {
        site.leaks_output = true;  // operator<<
        break;
      }
      if (toks[j].kind == TokKind::kIdent && next_is_call(toks, j) &&
          std::find(kLeakCalls.begin(), kLeakCalls.end(), toks[j].text) !=
              kLeakCalls.end()) {
        site.leaks_output = true;
        break;
      }
    }
    out->iteration_sites.push_back(std::move(site));
  }
}

void classify_iterations(const std::vector<const FileFacts*>& facts,
                         const ProgramIndex& index, std::vector<Finding>* out) {
  for (const FileFacts* file : facts) {
    for (const IterationSite& site : file->iteration_sites) {
      if (index.unordered_symbols.count(site.base) == 0) continue;
      Finding f;
      f.file = file->path;
      f.line = site.line;
      f.rule = "no-unordered-iteration";
      f.message = "range-for over unordered container '" + site.base + "'";
      f.hint =
          "iteration order is unspecified and varies across libstdc++ "
          "versions; iterate a sorted copy or use std::map/std::set when "
          "order can reach results";
      out->push_back(f);
      if (!site.leaks_output) continue;
      f.rule = "no-iteration-order-leak";
      f.message = "range-for over unordered container '" + site.base +
                  "' feeds serialized output";
      f.hint =
          "a run's results must not depend on hash iteration order; "
          "iterate a sorted copy (or a std::map) before anything that "
          "prints, streams, or appends";
      out->push_back(std::move(f));
    }
  }
}

}  // namespace slowcc::lint::rules::detail
