#include <map>
#include <string>
#include <vector>

#include "lint/rules/rules.hpp"

// Resource-pairing rule family. The ResourceGovernor (src/sim/resource)
// meters per-trial memory by counting packets in: every admission
// charge must eventually be released on the drain/drop/teardown path,
// or the budget leaks and the overload-abort fires on innocent trials.
// The rule groups charge/release call sites by the calling class across
// the whole batch (charge in one TU, release in another is fine) and
// flags classes that charge a family without ever releasing it. The
// reverse (release without charge) is deliberately allowed — drain
// helpers legitimately release on behalf of another class.

namespace slowcc::lint::rules::detail {

namespace {

struct PairFamily {
  const char* label;
  std::vector<std::string_view> charges;
  std::vector<std::string_view> releases;
};

const std::vector<PairFamily>& pair_families() {
  static const std::vector<PairFamily> kFamilies = {
      {"packet admission",
       {"note_packet_admitted", "note_packets_admitted"},
       {"note_packet_removed", "note_packets_released"}},
      {"queue admission", {"note_admitted"}, {"note_removed"}},
      {"generic budget", {"charge"}, {"release"}},
  };
  return kFamilies;
}

bool in_list(const std::vector<std::string_view>& list,
             const std::string& name) {
  for (const std::string_view entry : list) {
    if (entry == name) return true;
  }
  return false;
}

std::string join(const std::vector<std::string_view>& names) {
  std::string out;
  for (const std::string_view name : names) {
    if (!out.empty()) out += " / ";
    out += std::string(name);
  }
  return out;
}

}  // namespace

void check_governor_pairing(const std::vector<const FileFacts*>& facts,
                            const ProgramIndex& index,
                            std::vector<Finding>* out) {
  (void)index;
  struct Tally {
    // first charge site in (file, line) order — facts arrive path-sorted
    std::string file;
    int line = 0;
    std::string callee;
    int charges = 0;
    int releases = 0;
  };
  // (class, family index) -> tally, ordered for deterministic output.
  std::map<std::pair<std::string, std::size_t>, Tally> tallies;

  const std::vector<PairFamily>& families = pair_families();
  for (const FileFacts* file : facts) {
    for (const FuncDef& def : file->functions) {
      if (def.cls.empty()) continue;  // free functions cannot be paired
      for (const CallSite& call : def.calls) {
        for (std::size_t f = 0; f < families.size(); ++f) {
          const bool is_charge = in_list(families[f].charges, call.callee);
          const bool is_release = in_list(families[f].releases, call.callee);
          if (!is_charge && !is_release) continue;
          Tally& tally = tallies[{def.cls, f}];
          if (is_charge) {
            if (tally.charges == 0) {
              tally.file = file->path;
              tally.line = call.line;
              tally.callee = call.callee;
            }
            ++tally.charges;
          } else {
            ++tally.releases;
          }
        }
      }
    }
  }

  for (const auto& [key, tally] : tallies) {
    if (tally.charges == 0 || tally.releases > 0) continue;
    const PairFamily& family = families[key.second];
    Finding f;
    f.file = tally.file;
    f.line = tally.line;
    f.rule = "governor-charge-release";
    f.message = "class '" + key.first + "' charges the governor ('" +
                tally.callee + "', " + family.label +
                ") but never releases (" + join(family.releases) + ")";
    f.hint =
        "pair every admission charge with a release on the dequeue/drop/"
        "teardown path of the same class; suppress with a reason if a "
        "collaborator owns the release";
    out->push_back(std::move(f));
  }
}

}  // namespace slowcc::lint::rules::detail
