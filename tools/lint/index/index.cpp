#include "lint/index/index.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

namespace slowcc::lint {

namespace {

using lex::TokKind;
using lex::Token;

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Keywords that look like calls (`if (...)`) or that preface a
/// parenthesized construct which is not a function definition.
bool control_keyword(const std::string& text) {
  static const std::array<std::string_view, 18> kWords = {
      "if",       "for",          "while",    "switch",   "return",
      "sizeof",   "alignof",      "decltype", "noexcept", "catch",
      "throw",    "static_assert", "using",   "namespace", "defined",
      "alignas",  "co_await",     "co_return",
  };
  return std::find(kWords.begin(), kWords.end(), text) != kWords.end();
}

bool growth_method(const std::string& text) {
  static const std::array<std::string_view, 6> kGrowth = {
      "push_back", "emplace_back", "emplace", "insert", "resize", "reserve"};
  return std::find(kGrowth.begin(), kGrowth.end(), text) != kGrowth.end();
}

struct ClassScope {
  std::string name;
  int open_depth = 0;  // brace depth inside the class body
};

/// Find the matching close for the open paren/brace at `open`, or
/// tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& t, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (is_punct(t[j], opener)) ++depth;
    if (is_punct(t[j], closer) && --depth == 0) return j;
  }
  return t.size();
}

}  // namespace

void analyze_structure(const lex::LexedSource& lx, FileFacts* out) {
  const std::vector<Token>& t = lx.tokens;
  int depth = 0;
  std::vector<ClassScope> classes;
  // token index of a class body's '{' -> class name
  std::map<std::size_t, std::string> pending_class;
  FuncDef* body = nullptr;  // open function while scanning its body
  int body_depth = 0;       // brace depth at which `body` closes

  // Pre-scan for class/struct heads so the main walk can push scope at
  // the exact '{' token.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(is_ident(t[i], "class") || is_ident(t[i], "struct"))) continue;
    if (i > 0 && is_ident(t[i - 1], "enum")) continue;  // enum class
    std::size_t j = i + 1;
    std::string name;
    while (j < t.size()) {
      if (t[j].kind == TokKind::kIdent && t[j].text != "final" &&
          t[j].text != "alignas") {
        name = t[j].text;  // last ident before '{'/';'/':' wins: handles
        ++j;               // attributes and macro tags before the name
        if (j < t.size() && (is_punct(t[j], "{") || is_punct(t[j], ":") ||
                             is_punct(t[j], ";") || is_punct(t[j], "<"))) {
          break;
        }
        continue;
      }
      break;
    }
    if (name.empty()) continue;
    // Scan to the body '{' (skipping template args and base lists) or
    // bail at ';' (forward declaration) / '(' (a variable like
    // `struct tm x(...)` or function returning a struct).
    int angle = 0;
    for (; j < t.size(); ++j) {
      if (is_punct(t[j], "<")) ++angle;
      if (is_punct(t[j], ">") && angle > 0) --angle;
      if (angle > 0) continue;
      if (is_punct(t[j], ";") || is_punct(t[j], "(") || is_punct(t[j], "=")) {
        break;
      }
      if (is_punct(t[j], "{")) {
        pending_class[j] = name;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (is_punct(tok, "{")) {
      const auto pc = pending_class.find(i);
      ++depth;
      if (pc != pending_class.end()) {
        classes.push_back({pc->second, depth});
      }
      continue;
    }
    if (is_punct(tok, "}")) {
      --depth;
      while (!classes.empty() && classes.back().open_depth > depth) {
        classes.pop_back();
      }
      if (body != nullptr && depth <= body_depth) body = nullptr;
      continue;
    }

    if (body != nullptr) {
      // ---- inside a function body: collect calls and alloc sites ----
      if (tok.kind != TokKind::kIdent) continue;
      const bool prev_member =
          i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
      if (tok.text == "new" && !prev_member) {
        body->allocs.push_back({tok.line, "new"});
        continue;
      }
      const bool next_open =
          i + 1 < t.size() &&
          (is_punct(t[i + 1], "(") || is_punct(t[i + 1], "<"));
      if ((tok.text == "make_shared" || tok.text == "make_unique") &&
          next_open) {
        body->allocs.push_back({tok.line, tok.text});
        continue;
      }
      if (i + 1 < t.size() && is_punct(t[i + 1], "(")) {
        if (control_keyword(tok.text)) continue;
        if (i > 0 && is_ident(t[i - 1], "new")) continue;  // new Foo(...)
        if (prev_member && growth_method(tok.text)) {
          body->allocs.push_back({tok.line, tok.text});
        }
        body->calls.push_back({tok.text, tok.line, prev_member});
      }
      continue;
    }

    // ---- declaration scope: look for function definitions ----------
    if (!is_punct(tok, "(") || i == 0) continue;

    // Walk back over the name: ident, '::', '~', or operator+punct.
    std::size_t k = i;  // one past the last name token (exclusive walk)
    std::string simple;
    std::string qualifier_cls;
    bool dtor = false;
    {
      std::size_t p = i;
      // operator overloads: puncts between 'operator' and '('.
      std::size_t q = p;
      std::string op_text;
      while (q > 0 && t[q - 1].kind == TokKind::kPunct &&
             !is_punct(t[q - 1], ")") && !is_punct(t[q - 1], "}") &&
             op_text.size() < 4) {
        op_text = t[q - 1].text + op_text;
        --q;
      }
      if (q > 0 && is_ident(t[q - 1], "operator") && !op_text.empty()) {
        simple = "operator" + op_text;
        k = q - 1;
      } else if (p > 0 && t[p - 1].kind == TokKind::kIdent) {
        simple = t[p - 1].text;
        k = p - 1;
        if (k > 0 && is_punct(t[k - 1], "~")) {
          dtor = true;
          simple = "~" + simple;
          --k;
        }
      } else {
        continue;  // lambda, cast, or expression parenthesis
      }
      // Collect the qualifier chain: Cls:: (possibly Ns::Cls::).
      std::vector<std::string> quals;
      while (k >= 2 && is_punct(t[k - 1], "::") &&
             t[k - 2].kind == TokKind::kIdent) {
        quals.push_back(t[k - 2].text);
        k -= 2;
      }
      if (!quals.empty()) qualifier_cls = quals.front();  // innermost
    }
    if (simple.empty() || control_keyword(simple)) continue;
    if (dtor && qualifier_cls.empty() && classes.empty()) continue;

    const std::size_t close = match_forward(t, i, "(", ")");
    if (close >= t.size()) continue;

    // Between ')' and the body '{': specifiers, trailing return, or a
    // ctor-init list. A ';', '=', or ',' at this level means this was
    // only a declaration (or a variable) — not a definition.
    std::size_t j = close + 1;
    bool in_init_list = false;
    std::size_t body_open = t.size();
    for (; j < t.size(); ++j) {
      if (is_punct(t[j], "(")) {
        j = match_forward(t, j, "(", ")");
        if (j >= t.size()) break;
        continue;
      }
      if (is_punct(t[j], "{")) {
        // In a ctor-init list a '{' directly after an identifier or
        // template-close is a braced member initializer — skip it.
        if (in_init_list && j > 0 &&
            (t[j - 1].kind == TokKind::kIdent || is_punct(t[j - 1], ">"))) {
          j = match_forward(t, j, "{", "}");
          if (j >= t.size()) break;
          continue;
        }
        body_open = j;
        break;
      }
      if (is_punct(t[j], ":")) {
        in_init_list = true;
        continue;
      }
      if (is_punct(t[j], ";") || is_punct(t[j], "=") ||
          (!in_init_list && is_punct(t[j], ","))) {
        break;
      }
    }
    if (body_open >= t.size()) continue;

    FuncDef def;
    def.cls = !qualifier_cls.empty()
                  ? qualifier_cls
                  : (classes.empty() ? std::string() : classes.back().name);
    def.name = simple;
    def.line = t[k < t.size() ? k : i].line;
    out->functions.push_back(std::move(def));
    body = &out->functions.back();
    body_depth = depth;  // body closes when depth returns here
    // Jump the main walk to the '{' so init-list calls are skipped.
    i = body_open - 1;
  }
}

ProgramIndex build_index(const std::vector<const FileFacts*>& facts) {
  ProgramIndex index;
  for (const FileFacts* file : facts) {
    index.unordered_symbols.insert(file->unordered_symbols.begin(),
                                   file->unordered_symbols.end());
    for (const FuncDef& fn : file->functions) {
      index.functions_by_name[fn.name].push_back({&fn, file});
    }
  }
  // Resolve quoted includes against the batch by path suffix.
  std::vector<std::string> paths;
  paths.reserve(facts.size());
  for (const FileFacts* file : facts) paths.push_back(file->path);
  std::sort(paths.begin(), paths.end());
  for (const FileFacts* file : facts) {
    std::vector<std::string>& edges = index.include_edges[file->path];
    for (const std::string& target : file->includes) {
      for (const std::string& path : paths) {
        if (path == target ||
            (path.size() > target.size() + 1 &&
             path.compare(path.size() - target.size(), target.size(),
                          target) == 0 &&
             path[path.size() - target.size() - 1] == '/')) {
          edges.push_back(path);
        }
      }
    }
  }
  return index;
}

std::vector<std::vector<std::string>> find_include_cycles(
    const ProgramIndex& index) {
  std::vector<std::vector<std::string>> cycles;
  std::set<std::vector<std::string>> seen;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;

  // Recursive lambda via explicit work since depth is tiny in practice.
  struct Frame {
    std::string node;
    std::size_t next_edge = 0;
  };
  for (const auto& [start, _] : index.include_edges) {
    if (color[start] != 0) continue;
    std::vector<Frame> frames;
    frames.push_back({start, 0});
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto it = index.include_edges.find(frame.node);
      const std::vector<std::string>* edges =
          it != index.include_edges.end() ? &it->second : nullptr;
      if (edges == nullptr || frame.next_edge >= edges->size()) {
        color[frame.node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string next = (*edges)[frame.next_edge++];
      if (color[next] == 1) {
        // Back edge: the cycle is the stack suffix from `next`.
        const auto pos = std::find(stack.begin(), stack.end(), next);
        std::vector<std::string> cycle(pos, stack.end());
        std::sort(cycle.begin(), cycle.end());
        if (seen.insert(cycle).second) cycles.push_back(cycle);
        continue;
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.push_back(next);
        frames.push_back({next, 0});
      }
    }
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

// ---------------------------------------------------------------------------
// Facts serialization (cache format). Line-oriented; free text fields
// are percent-escaped so '|' and newlines survive.
// ---------------------------------------------------------------------------

namespace {

std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '%' || c == '|' || c == '\n' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string unesc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const std::string hex(s.substr(i + 1, 2));
      out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '|') {
      fields.emplace_back(line.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return fields;
}

}  // namespace

std::string serialize_facts(const FileFacts& facts) {
  std::string out;
  out += "p " + esc(facts.path) + "\n";
  for (const std::string& sym : facts.unordered_symbols) {
    out += "u " + esc(sym) + "\n";
  }
  for (const std::string& inc : facts.includes) {
    out += "i " + esc(inc) + "\n";
  }
  for (const FuncDef& fn : facts.functions) {
    out += "F " + esc(fn.cls) + "|" + esc(fn.name) + "|" +
           std::to_string(fn.line) + "\n";
    for (const CallSite& call : fn.calls) {
      out += "C " + esc(call.callee) + "|" + std::to_string(call.line) + "|" +
             (call.member_call ? "1" : "0") + "\n";
    }
    for (const AllocSite& alloc : fn.allocs) {
      out += "A " + esc(alloc.what) + "|" + std::to_string(alloc.line) + "\n";
    }
  }
  for (const IterationSite& site : facts.iteration_sites) {
    out += "I " + std::to_string(site.line) + "|" + esc(site.base) + "|" +
           (site.leaks_output ? "1" : "0") + "\n";
  }
  for (const std::string& rule : facts.file_allow) {
    out += "sf " + esc(rule) + "\n";
  }
  for (const auto& [line, rule] : facts.line_allow) {
    out += "sl " + std::to_string(line) + "|" + esc(rule) + "\n";
  }
  for (const Finding& f : facts.local_findings) {
    out += "L " + esc(f.rule) + "|" + std::to_string(f.line) + "|" +
           (f.advisory ? "1" : "0") + "|" + esc(f.file) + "|" +
           esc(f.message) + "|" + esc(f.hint) + "\n";
  }
  return out;
}

bool deserialize_facts(std::string_view text, FileFacts* out) {
  *out = FileFacts();
  std::size_t pos = 0;
  FuncDef* fn = nullptr;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string_view::npos) return false;
    const std::string_view tag = line.substr(0, sp);
    const std::string_view rest = line.substr(sp + 1);
    const std::vector<std::string> fields = split_fields(rest);
    if (tag == "p") {
      out->path = unesc(rest);
    } else if (tag == "u") {
      out->unordered_symbols.push_back(unesc(rest));
    } else if (tag == "i") {
      out->includes.push_back(unesc(rest));
    } else if (tag == "F") {
      if (fields.size() != 3) return false;
      FuncDef def;
      def.cls = unesc(fields[0]);
      def.name = unesc(fields[1]);
      def.line = std::atoi(fields[2].c_str());
      out->functions.push_back(std::move(def));
      fn = &out->functions.back();
    } else if (tag == "C") {
      if (fn == nullptr || fields.size() != 3) return false;
      fn->calls.push_back(
          {unesc(fields[0]), std::atoi(fields[1].c_str()), fields[2] == "1"});
    } else if (tag == "A") {
      if (fn == nullptr || fields.size() != 2) return false;
      fn->allocs.push_back({std::atoi(fields[1].c_str()), unesc(fields[0])});
    } else if (tag == "I") {
      if (fields.size() != 3) return false;
      out->iteration_sites.push_back(
          {std::atoi(fields[0].c_str()), unesc(fields[1]), fields[2] == "1"});
    } else if (tag == "sf") {
      out->file_allow.push_back(unesc(rest));
    } else if (tag == "sl") {
      if (fields.size() != 2) return false;
      out->line_allow.emplace_back(std::atoi(fields[0].c_str()),
                                   unesc(fields[1]));
    } else if (tag == "L") {
      if (fields.size() != 6) return false;
      Finding f;
      f.rule = unesc(fields[0]);
      f.line = std::atoi(fields[1].c_str());
      f.advisory = fields[2] == "1";
      f.file = unesc(fields[3]);
      f.message = unesc(fields[4]);
      f.hint = unesc(fields[5]);
      out->local_findings.push_back(std::move(f));
    } else {
      return false;  // unknown tag: stale format, force re-extraction
    }
  }
  return !out->path.empty();
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace slowcc::lint
