#pragma once

// slowcc-lint program indices — per-file facts extracted from the token
// stream, and the cross-TU indices built from a whole batch of facts.
//
// Facts are the unit of caching: everything the global rules need from
// a file (function/call/alloc structure, unordered-container symbols,
// iteration sites, includes, suppressions, and the file's local
// findings) is captured here and can be serialized to the on-disk
// content-hash cache, so an incremental run re-lexes only changed
// files and still runs every cross-file rule over the full program.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/finding.hpp"
#include "lint/lexer/lexer.hpp"

namespace slowcc::lint {

/// A call site inside a function body. `callee` is the simple (last)
/// name; member calls (`obj.f()`, `p->f()`) are marked.
struct CallSite {
  std::string callee;
  int line = 0;
  bool member_call = false;
};

/// An allocation (or container-growth) site inside a function body.
struct AllocSite {
  int line = 0;
  std::string what;  // "new", "make_shared", "push_back", ...
};

/// One function definition. `cls` is the enclosing/qualifying class
/// ("" for free functions); `name` the simple name ("~X" for a
/// destructor).
struct FuncDef {
  std::string cls;
  std::string name;
  int line = 0;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
};

/// A range-for whose range expression ends in a plain identifier.
/// `leaks_output` marks bodies that feed serialized output (operator<<,
/// push_back/append, printf-family).
struct IterationSite {
  int line = 0;
  std::string base;
  bool leaks_output = false;
};

/// Everything the engine knows about one file.
struct FileFacts {
  std::string path;
  std::vector<std::string> unordered_symbols;  // unordered-container vars
  std::vector<std::string> includes;           // quoted #include targets
  std::vector<FuncDef> functions;
  std::vector<IterationSite> iteration_sites;
  std::vector<std::string> file_allow;  // file-scope suppressed rules
  std::vector<std::pair<int, std::string>> line_allow;  // line -> rule
  std::vector<Finding> local_findings;  // pre-suppression single-file findings
};

/// Token-stream structure analysis: classes, function definitions (with
/// qualified-name and in-class attribution), call sites, allocation
/// sites. Appends to `out->functions`.
void analyze_structure(const lex::LexedSource& lx, FileFacts* out);

/// Cross-TU indices over a batch of facts.
struct ProgramIndex {
  struct FuncRef {
    const FuncDef* def = nullptr;
    const FileFacts* file = nullptr;
  };
  /// Every unordered-container symbol in the batch.
  std::set<std::string> unordered_symbols;
  /// Simple function name -> definitions, in deterministic (file, line)
  /// order — the call table.
  std::map<std::string, std::vector<FuncRef>> functions_by_name;
  /// path -> batch paths it includes (quoted includes resolved by path
  /// suffix) — the include graph.
  std::map<std::string, std::vector<std::string>> include_edges;
};

/// `facts` must be in deterministic (path-sorted) order; the index
/// preserves it, so BFS walks and reports come out stable.
[[nodiscard]] ProgramIndex build_index(
    const std::vector<const FileFacts*>& facts);

/// Include-graph cycle scan: one entry per cycle, as the sorted list of
/// paths on the cycle. Deterministic.
[[nodiscard]] std::vector<std::vector<std::string>> find_include_cycles(
    const ProgramIndex& index);

// -- facts (de)serialization for the content-hash cache --------------

[[nodiscard]] std::string serialize_facts(const FileFacts& facts);
[[nodiscard]] bool deserialize_facts(std::string_view text, FileFacts* out);

/// FNV-1a 64-bit — cache keys for file contents and paths.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

}  // namespace slowcc::lint
