#include "lint/lexer/lexer.hpp"

#include <cctype>

namespace slowcc::lint::lex {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Logical-character cursor implementing translation phase 2: a
/// backslash immediately followed by a newline (or \r\n) vanishes, so
/// every consumer above sees spliced logical lines while `line()` /
/// `col()` keep reporting physical positions.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) { skip_splices(); }

  [[nodiscard]] bool eof() const { return i_ >= s_.size(); }

  /// k-th logical character ahead ('\0' past the end).
  [[nodiscard]] char peek(int k = 0) const {
    std::size_t p = i_;
    for (int n = 0; n < k; ++n) {
      if (p >= s_.size()) return '\0';
      p = advance_raw(p);
    }
    return p < s_.size() ? s_[p] : '\0';
  }

  char get() {
    if (eof()) return '\0';
    const char c = s_[i_];
    if (c == '\n') {
      ++line_;
      col_ = 0;
    } else {
      ++col_;
    }
    ++i_;
    skip_splices();
    return c;
  }

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }

 private:
  /// Position after the logical char at p (skipping any splice run).
  [[nodiscard]] std::size_t advance_raw(std::size_t p) const {
    ++p;
    while (p < s_.size() && s_[p] == '\\' && splice_len(p) > 0) {
      p += splice_len(p);
    }
    return p;
  }

  /// Length of the splice starting at p ("\\\n" or "\\\r\n"), else 0.
  [[nodiscard]] std::size_t splice_len(std::size_t p) const {
    if (p + 1 < s_.size() && s_[p] == '\\' && s_[p + 1] == '\n') return 2;
    if (p + 2 < s_.size() && s_[p] == '\\' && s_[p + 1] == '\r' &&
        s_[p + 2] == '\n') {
      return 3;
    }
    return 0;
  }

  void skip_splices() {
    std::size_t len = 0;
    while (i_ < s_.size() && (len = splice_len(i_)) > 0) {
      i_ += len;
      ++line_;
      col_ = 0;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
  int col_ = 0;
};

/// Conditional-compilation stack entry for one #if/#ifdef level.
struct Cond {
  bool live = true;   // the current branch contributes tokens
  bool taken = true;  // some branch at this level was (or may be) live
};

class Lexer {
 public:
  explicit Lexer(const std::string& content) : c_(content) {}

  LexedSource run() {
    while (!c_.eof()) {
      const char ch = c_.peek();
      if (ch == '\n') {
        c_.get();
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
        c_.get();
        continue;
      }
      if (ch == '/' && c_.peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (ch == '/' && c_.peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (at_line_start_ &&
          (ch == '#' || (ch == '%' && c_.peek(1) == ':'))) {
        lex_directive();
        continue;
      }
      at_line_start_ = false;
      if (!active()) {
        // Dead (#if 0) region: fast-forward to the next line; only
        // directives matter until the region closes.
        while (!c_.eof() && c_.peek() != '\n') c_.get();
        continue;
      }
      Token tok = lex_token();
      out_.tokens.push_back(std::move(tok));
    }
    return std::move(out_);
  }

 private:
  [[nodiscard]] bool active() const {
    for (const Cond& cond : conds_) {
      if (!cond.live) return false;
    }
    return true;
  }

  void lex_line_comment() {
    c_.get();  // '/'
    c_.get();  // '/'
    // A splice at the end of a line comment keeps commenting (the v1
    // masker ended the comment at the physical newline — false
    // positives on the spliced continuation). The cursor hides the
    // splice, so consuming to the logical newline is exactly right.
    while (!c_.eof() && c_.peek() != '\n') {
      const int line = c_.line();
      const char ch = c_.get();
      if (active()) out_.comments[line] += ch;
    }
  }

  void lex_block_comment() {
    c_.get();  // '/'
    c_.get();  // '*'
    while (!c_.eof()) {
      if (c_.peek() == '*' && c_.peek(1) == '/') {
        c_.get();
        c_.get();
        return;
      }
      const int line = c_.line();
      const char ch = c_.get();
      if (ch != '\n' && active()) out_.comments[line] += ch;
    }
  }

  /// Lex one token at the cursor (not called on whitespace/comments).
  Token lex_token() {
    Token tok;
    tok.line = c_.line();
    tok.col = c_.col();
    tok.pp = in_directive_;
    const char ch = c_.peek();

    if (ident_start(ch)) {
      std::string text;
      while (!c_.eof() && ident_char(c_.peek())) text += c_.get();
      // Encoding / raw-string literal prefixes. Checked against the
      // exact prefix set so an identifier that merely *ends* in R
      // (`MARKER"..."`) stays an identifier — a v1 masking bug.
      const char next = c_.peek();
      if (next == '"' &&
          (text == "R" || text == "LR" || text == "uR" || text == "UR" ||
           text == "u8R")) {
        return lex_raw_string(tok);
      }
      if (next == '"' &&
          (text == "L" || text == "u" || text == "U" || text == "u8")) {
        return lex_quoted(tok, '"', TokKind::kString);
      }
      if (next == '\'' &&
          (text == "L" || text == "u" || text == "U" || text == "u8")) {
        return lex_quoted(tok, '\'', TokKind::kChar);
      }
      tok.kind = TokKind::kIdent;
      tok.text = std::move(text);
      return tok;
    }
    if (digit(ch) || (ch == '.' && digit(c_.peek(1)))) {
      tok.kind = TokKind::kNumber;
      tok.text += c_.get();
      while (!c_.eof()) {
        const char p = c_.peek();
        if (ident_char(p) || p == '.' || p == '\'') {
          tok.text += c_.get();
          continue;
        }
        if ((p == '+' || p == '-') && !tok.text.empty()) {
          const char last = tok.text.back();
          if (last == 'e' || last == 'E' || last == 'p' || last == 'P') {
            tok.text += c_.get();
            continue;
          }
        }
        break;
      }
      return tok;
    }
    if (ch == '"') return lex_quoted(tok, '"', TokKind::kString);
    if (ch == '\'') return lex_quoted(tok, '\'', TokKind::kChar);

    // Punctuation. Digraphs normalize to their primary spelling; "::"
    // and "->" lex as single tokens (rules key on them); everything
    // else is one character.
    tok.kind = TokKind::kPunct;
    const char c0 = c_.get();
    const char c1 = c_.peek();
    if (c0 == ':' && c1 == ':') {
      c_.get();
      tok.text = "::";
    } else if (c0 == '-' && c1 == '>') {
      c_.get();
      tok.text = "->";
    } else if (c0 == '<' && c1 == '%') {
      c_.get();
      tok.text = "{";
    } else if (c0 == '%' && c1 == '>') {
      c_.get();
      tok.text = "}";
    } else if (c0 == '<' && c1 == ':') {
      c_.get();
      tok.text = "[";
    } else if (c0 == ':' && c1 == '>') {
      c_.get();
      tok.text = "]";
    } else if (c0 == '%' && c1 == ':') {
      c_.get();
      tok.text = "#";
    } else {
      tok.text = std::string(1, c0);
    }
    return tok;
  }

  Token lex_quoted(Token tok, char quote, TokKind kind) {
    tok.kind = kind;
    c_.get();  // opening quote
    bool escaped = false;
    while (!c_.eof()) {
      const char ch = c_.peek();
      if (!escaped && ch == quote) {
        c_.get();
        break;
      }
      if (ch == '\n') break;  // unterminated: stop at end of line
      tok.literal += c_.get();
      escaped = !escaped && tok.literal.back() == '\\';
    }
    return tok;
  }

  Token lex_raw_string(Token tok) {
    tok.kind = TokKind::kString;
    c_.get();  // opening quote
    std::string delim;
    while (!c_.eof() && c_.peek() != '(' && delim.size() < 16) {
      delim += c_.get();
    }
    if (!c_.eof()) c_.get();  // '('
    const std::string closer = ")" + delim + "\"";
    std::string tail;  // rolling window of the last |closer| chars
    while (!c_.eof()) {
      tail += c_.get();
      if (tail.size() > closer.size()) tail.erase(0, tail.size() - closer.size());
      if (tail == closer) {
        tok.literal.resize(tok.literal.size() >= delim.size() + 1
                               ? tok.literal.size() - delim.size() - 1
                               : 0);
        return tok;
      }
      tok.literal += tail.back();
    }
    return tok;  // unterminated raw string: swallow to end of input
  }

  void lex_directive() {
    Directive dir;
    dir.line = c_.line();
    if (c_.peek() == '%') {
      c_.get();
      c_.get();  // "%:"
    } else {
      c_.get();  // '#'
    }
    in_directive_ = true;
    skip_directive_spaces();
    while (!c_.eof() && ident_char(c_.peek())) dir.keyword += c_.get();

    const bool was_active = active();
    std::vector<Token> body;
    // #include <...> paths would lex as a soup of '<' idents '>' — read
    // the target verbatim instead.
    skip_directive_spaces();
    if (dir.keyword == "include" && c_.peek() == '<') {
      c_.get();
      std::string target;
      while (!c_.eof() && c_.peek() != '>' && c_.peek() != '\n') {
        target += c_.get();
      }
      if (c_.peek() == '>') c_.get();
      dir.args.push_back(target);
    }
    while (!c_.eof() && c_.peek() != '\n') {
      if (std::isspace(static_cast<unsigned char>(c_.peek())) != 0) {
        c_.get();
        continue;
      }
      if (c_.peek() == '/' && c_.peek(1) == '/') {
        lex_line_comment();
        break;  // the comment runs to the end of the directive line
      }
      if (c_.peek() == '/' && c_.peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      Token tok = lex_token();
      dir.args.push_back(tok.kind == TokKind::kString ||
                                 tok.kind == TokKind::kChar
                             ? tok.literal
                             : tok.text);
      if (tok.kind == TokKind::kString && dir.keyword == "include" &&
          dir.include_target.empty()) {
        dir.include_target = tok.literal;
        dir.quoted_include = true;
      }
      body.push_back(std::move(tok));
    }
    in_directive_ = false;

    // Conditional-compilation bookkeeping. Only the literal `#if 0` /
    // `#if 1` forms are evaluated; unknown conditions are assumed live
    // (the code compiles in some configuration, so the rules apply).
    const std::string cond = dir.args.empty() ? "" : dir.args.front();
    if (dir.keyword == "if" || dir.keyword == "ifdef" ||
        dir.keyword == "ifndef") {
      Cond c;
      c.live = !(dir.keyword == "if" && cond == "0");
      c.taken = c.live;
      conds_.push_back(c);
    } else if (dir.keyword == "elif" && !conds_.empty()) {
      Cond& top = conds_.back();
      top.live = !top.taken && cond != "0";
      top.taken = top.taken || top.live;
    } else if (dir.keyword == "else" && !conds_.empty()) {
      Cond& top = conds_.back();
      top.live = !top.taken;
      top.taken = true;
    } else if (dir.keyword == "endif" && !conds_.empty()) {
      conds_.pop_back();
    }

    if (was_active) {
      if (dir.keyword == "define") {
        // Macro bodies are real code in every expansion — keep their
        // tokens in the stream (flagged pp) so rules scan them.
        for (Token& tok : body) out_.tokens.push_back(std::move(tok));
      }
      out_.directives.push_back(std::move(dir));
    }
    at_line_start_ = true;
  }

  void skip_directive_spaces() {
    while (!c_.eof() && c_.peek() != '\n' &&
           std::isspace(static_cast<unsigned char>(c_.peek())) != 0) {
      c_.get();
    }
  }

  Cursor c_;
  LexedSource out_;
  std::vector<Cond> conds_;
  bool at_line_start_ = true;
  bool in_directive_ = false;
};

}  // namespace

LexedSource lex(const std::string& content) { return Lexer(content).run(); }

}  // namespace slowcc::lint::lex
