#pragma once

// slowcc-lint lexer — a preprocessor-aware C++ token stream.
//
// This replaces the v1 regex/state-machine "masking" pass. The lexer
// handles, as translation phases rather than per-line heuristics:
//
//   * backslash line splices (phase 2): a spliced line comment keeps
//     commenting, a spliced string literal keeps being a string, and a
//     spliced identifier lexes as one identifier — all three were
//     mis-masked by v1;
//   * comments (line + block), whose text is collected per physical
//     line for suppression-directive parsing;
//   * string, char, and raw string literals, including encoding
//     prefixes (L/u/U/u8, optionally combined with R) and arbitrary
//     raw delimiters — literal *content* never reaches rule matching
//     (Token::text is empty for literals; the raw bytes are kept in
//     Token::literal for directive processing only);
//   * preprocessor directives: `#include` targets feed the include
//     graph, `#pragma once` feeds header-hygiene, `#if 0` regions are
//     excluded from the token stream (with proper `#else`/`#elif`/
//     nesting handling), and `#define` bodies — including multi-line
//     spliced macros — ARE lexed into the stream (flagged `pp`) so a
//     rand() hidden in a macro is still a finding;
//   * digraphs (<% %> <: :> %:), normalized to their primary spelling.
//
// Tokens carry the physical (pre-splice) line so findings point at
// real source lines.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace slowcc::lint::lex {

enum class TokKind : std::uint8_t {
  kIdent,   // identifiers and keywords
  kNumber,  // pp-numbers (1e9, 0x1F, 1'000'000 lex as one token)
  kString,  // string literal (text empty; raw bytes in `literal`)
  kChar,    // character literal (text empty; raw bytes in `literal`)
  kPunct,   // operators/punctuation; "::" and "->" are single tokens
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;     // spelling for ident/number/punct; "" for literals
  std::string literal;  // literal content (escapes unprocessed); rules
                        // must match on `text`, never on this
  int line = 1;         // 1-based physical line of the first character
  int col = 0;          // 0-based physical column of the first character
  bool pp = false;      // token belongs to a preprocessor directive body
};

/// One preprocessor directive. Condition/pragma arguments are kept as
/// token spellings; `#define` bodies additionally land in the main
/// token stream with `pp = true`.
struct Directive {
  int line = 1;
  std::string keyword;            // "include", "pragma", "if", "define", ...
  std::vector<std::string> args;  // spellings of the argument tokens
  std::string include_target;     // path of a quoted #include "" ("" for <>)
  bool quoted_include = false;
};

struct LexedSource {
  std::vector<Token> tokens;            // inactive #if-0 regions excluded
  std::map<int, std::string> comments;  // physical line -> comment text
  std::vector<Directive> directives;    // inactive regions excluded
};

/// Lex `content`. Never throws on malformed input: unterminated
/// literals and comments end at end-of-input, unknown bytes lex as
/// single-character punctuation.
[[nodiscard]] LexedSource lex(const std::string& content);

}  // namespace slowcc::lint::lex
