// slowcc_lint — CLI driver for the determinism & error-taxonomy linter.
//
//   slowcc_lint [--root DIR] [--format text|json] [--list-rules] [paths...]
//
// Walks the given paths (default: src bench tools examples) under
// --root, lints every .cpp/.cc/.hpp/.h, and prints findings. Exit code:
// 0 clean, 1 enforced findings, 2 usage or I/O error — suitable for CI
// and for the `lint` CMake target. Advisory findings are printed but do
// not affect the exit code. Rules, scoping, and the inline suppression
// syntax are documented in tools/lint/lint.hpp and DESIGN.md §8.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;
using slowcc::lint::SourceFile;

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: slowcc_lint [--root DIR] [--format text|json] "
         "[--list-rules] [paths...]\n"
         "  --root DIR      repo root paths are resolved against "
         "(default: .)\n"
         "  --format FMT    'text' (default) or 'json'\n"
         "  --list-rules    print every rule with a summary and exit\n"
         "  paths           files or directories relative to --root\n"
         "                  (default: src bench tools examples)\n";
  return code;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

/// Repo-relative display path with forward slashes (rule scoping keys
/// off prefixes like "src/").
std::string display_path(const fs::path& file, const fs::path& root) {
  const fs::path rel = file.lexically_relative(root);
  return (rel.empty() || *rel.begin() == "..") ? file.generic_string()
                                               : rel.generic_string();
}

bool read_file(const fs::path& file, std::string* out) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string format = "text";
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const auto& rule : slowcc::lint::all_rules()) {
        std::cout << rule.name << (rule.advisory ? " (advisory)" : "")
                  << "\n    " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--root") {
      if (++i >= argc) return usage(std::cerr, 2);
      root = argv[i];
    } else if (arg == "--format") {
      if (++i >= argc) return usage(std::cerr, 2);
      format = argv[i];
      if (format != "text" && format != "json") return usage(std::cerr, 2);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "slowcc_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tools", "examples"};

  std::vector<fs::path> files;
  for (const auto& entry : paths) {
    const fs::path path = root / entry;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::cerr << "slowcc_lint: no such file or directory: "
                << path.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const auto& file : files) {
    SourceFile source;
    source.path = display_path(file, root);
    if (!read_file(file, &source.content)) {
      std::cerr << "slowcc_lint: cannot read " << file.string() << "\n";
      return 2;
    }
    sources.push_back(std::move(source));
  }

  const std::vector<slowcc::lint::Finding> findings =
      slowcc::lint::run(sources);
  const long advisory =
      std::count_if(findings.begin(), findings.end(),
                    [](const slowcc::lint::Finding& f) { return f.advisory; });
  const long enforced = static_cast<long>(findings.size()) - advisory;
  if (format == "json") {
    slowcc::lint::report_json(findings, std::cout);
  } else {
    slowcc::lint::report_text(findings, std::cout);
    std::cerr << "slowcc_lint: " << sources.size() << " files, " << enforced
              << " finding(s), " << advisory << " advisory\n";
  }
  return enforced == 0 ? 0 : 1;
}
