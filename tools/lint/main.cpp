// slowcc_lint — CLI driver for the determinism & resource-invariant
// linter.
//
//   slowcc_lint [--root DIR] [--format text|json|sarif] [--output FILE]
//               [--baseline FILE] [--write-baseline FILE]
//               [--cache DIR] [--jobs N] [--list-rules] [paths...]
//
// Walks the given paths (default: src bench tools examples) under
// --root, lints every .cpp/.cc/.hpp/.h, and prints findings. Exit code:
// 0 clean, 1 enforced findings (absent from --baseline when given),
// 2 usage or I/O error — suitable for CI and for the `lint` CMake
// target. Advisory findings are reported but do not affect the exit
// code. Rules, scoping, and the inline suppression syntax are
// documented in tools/lint/lint.hpp and DESIGN.md §8.
//
// --cache DIR keeps per-file facts keyed by content hash + rule-set
// fingerprint: an incremental re-run re-lexes only changed files while
// the cross-TU rules still see the whole program (facts, not findings,
// are cached). --jobs N scans files with N worker threads; results are
// slot-ordered, so output is identical at any job count.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;
using slowcc::lint::FileFacts;
using slowcc::lint::Finding;
using slowcc::lint::SourceFile;

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: slowcc_lint [--root DIR] [--format text|json|sarif]\n"
         "                   [--output FILE] [--baseline FILE]\n"
         "                   [--write-baseline FILE] [--cache DIR]\n"
         "                   [--jobs N] [--list-rules] [paths...]\n"
         "  --root DIR      repo root paths are resolved against "
         "(default: .)\n"
         "  --format FMT    'text' (default), 'json', or 'sarif'\n"
         "  --output FILE   write the report to FILE instead of stdout\n"
         "  --baseline FILE fail only on enforced findings absent from "
         "FILE\n"
         "  --write-baseline FILE  write current findings as the new "
         "baseline\n"
         "  --cache DIR     per-file facts cache (content-hash keyed)\n"
         "  --jobs N        scan files with N threads (default 1)\n"
         "  --list-rules    print every rule with a summary and exit\n"
         "  paths           files or directories relative to --root\n"
         "                  (default: src bench tools examples)\n";
  return code;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

/// Repo-relative display path with forward slashes (rule scoping keys
/// off prefixes like "src/").
std::string display_path(const fs::path& file, const fs::path& root) {
  const fs::path rel = file.lexically_relative(root);
  return (rel.empty() || *rel.begin() == "..") ? file.generic_string()
                                               : rel.generic_string();
}

bool read_file(const fs::path& file, std::string* out) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string hex64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

/// Facts cache. One file per source path; invalidated by content hash
/// and by the engine's rules_fingerprint, so a rule change never
/// resurrects stale facts. All misses are silent — the cache is an
/// optimization, never a correctness dependency.
class FactsCache {
 public:
  explicit FactsCache(fs::path dir) : dir_(std::move(dir)) {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    enabled_ = !ec && fs::is_directory(dir_, ec);
  }

  [[nodiscard]] bool load(const std::string& path, const std::string& content,
                          FileFacts* out) const {
    if (!enabled_) return false;
    std::string text;
    if (!read_file(entry(path), &text)) return false;
    const std::size_t eol = text.find('\n');
    if (eol == std::string::npos) return false;
    const std::string expected = header(content);
    if (text.compare(0, eol, expected) != 0) return false;
    return slowcc::lint::deserialize_facts(
        std::string_view(text).substr(eol + 1), out);
  }

  void store(const std::string& path, const std::string& content,
             const FileFacts& facts) const {
    if (!enabled_) return;
    const fs::path target = entry(path);
    const fs::path tmp = target.string() + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return;
      out << header(content) << "\n" << slowcc::lint::serialize_facts(facts);
      if (!out) return;
    }
    std::error_code ec;
    fs::rename(tmp, target, ec);
    if (ec) fs::remove(tmp, ec);
  }

 private:
  [[nodiscard]] fs::path entry(const std::string& path) const {
    return dir_ / (hex64(slowcc::lint::fnv1a64(path)) + ".facts");
  }

  [[nodiscard]] static std::string header(const std::string& content) {
    return "slowcc-lint-facts " +
           std::string(slowcc::lint::rules_fingerprint()) + " " +
           hex64(slowcc::lint::fnv1a64(content));
  }

  fs::path dir_;
  bool enabled_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string format = "text";
  std::string output_file;
  std::string baseline_file;
  std::string write_baseline_file;
  std::string cache_dir;
  int jobs = 1;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const auto& rule : slowcc::lint::all_rules()) {
        std::cout << rule.name << (rule.advisory ? " (advisory)" : "")
                  << "\n    " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--root") {
      if (++i >= argc) return usage(std::cerr, 2);
      root = argv[i];
    } else if (arg == "--format") {
      if (++i >= argc) return usage(std::cerr, 2);
      format = argv[i];
      if (format != "text" && format != "json" && format != "sarif") {
        return usage(std::cerr, 2);
      }
    } else if (arg == "--output") {
      if (++i >= argc) return usage(std::cerr, 2);
      output_file = argv[i];
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage(std::cerr, 2);
      baseline_file = argv[i];
    } else if (arg == "--write-baseline") {
      if (++i >= argc) return usage(std::cerr, 2);
      write_baseline_file = argv[i];
    } else if (arg == "--cache") {
      if (++i >= argc) return usage(std::cerr, 2);
      cache_dir = argv[i];
    } else if (arg == "--jobs") {
      if (++i >= argc) return usage(std::cerr, 2);
      jobs = std::atoi(argv[i]);
      if (jobs < 1 || jobs > 256) return usage(std::cerr, 2);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "slowcc_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tools", "examples"};

  std::vector<fs::path> files;
  for (const auto& entry : paths) {
    const fs::path path = root / entry;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::cerr << "slowcc_lint: no such file or directory: "
                << path.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const auto& file : files) {
    SourceFile source;
    source.path = display_path(file, root);
    if (!read_file(file, &source.content)) {
      std::cerr << "slowcc_lint: cannot read " << file.string() << "\n";
      return 2;
    }
    sources.push_back(std::move(source));
  }

  // Facts extraction: cache-aware and parallel. Each worker claims the
  // next source index and fills its slot, so the batch order (and with
  // it every downstream report) is independent of thread scheduling.
  const FactsCache* cache = nullptr;
  FactsCache cache_storage{fs::path(cache_dir)};
  if (!cache_dir.empty()) cache = &cache_storage;

  std::vector<FileFacts> facts(sources.size());
  {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (std::size_t i = next.fetch_add(1); i < sources.size();
           i = next.fetch_add(1)) {
        const SourceFile& source = sources[i];
        if (cache != nullptr &&
            cache->load(source.path, source.content, &facts[i])) {
          continue;
        }
        facts[i] = slowcc::lint::extract_facts(source);
        if (cache != nullptr) {
          cache->store(source.path, source.content, facts[i]);
        }
      }
    };
    const int workers =
        std::min<int>(jobs, static_cast<int>(sources.size()) + 1);
    if (workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }
  }

  const std::vector<Finding> findings = slowcc::lint::run_from_facts(facts);

  if (!write_baseline_file.empty()) {
    std::ofstream out(write_baseline_file, std::ios::trunc);
    if (!out) {
      std::cerr << "slowcc_lint: cannot write baseline "
                << write_baseline_file << "\n";
      return 2;
    }
    slowcc::lint::write_baseline(findings, out);
    std::cerr << "slowcc_lint: wrote baseline (" << findings.size()
              << " finding(s)) to " << write_baseline_file << "\n";
    return 0;
  }

  std::set<std::string> baseline;
  if (!baseline_file.empty()) {
    std::ifstream in(baseline_file);
    if (!in) {
      std::cerr << "slowcc_lint: cannot read baseline " << baseline_file
                << "\n";
      return 2;
    }
    baseline = slowcc::lint::parse_baseline(in);
  }

  long advisory = 0;
  long enforced = 0;
  long baselined = 0;
  for (const Finding& finding : findings) {
    if (finding.advisory) {
      ++advisory;
    } else if (!baseline_file.empty() &&
               baseline.count(slowcc::lint::finding_fingerprint(finding)) !=
                   0) {
      ++baselined;
    } else {
      ++enforced;
    }
  }

  std::ofstream file_out;
  if (!output_file.empty()) {
    file_out.open(output_file, std::ios::trunc);
    if (!file_out) {
      std::cerr << "slowcc_lint: cannot write " << output_file << "\n";
      return 2;
    }
  }
  std::ostream& out = output_file.empty() ? std::cout : file_out;
  if (format == "json") {
    slowcc::lint::report_json(findings, out);
  } else if (format == "sarif") {
    slowcc::lint::report_sarif(findings, out);
  } else {
    slowcc::lint::report_text(findings, out);
  }
  if (format == "text" || !output_file.empty()) {
    std::cerr << "slowcc_lint: " << sources.size() << " files, " << enforced
              << " finding(s), " << advisory << " advisory";
    if (!baseline_file.empty()) {
      std::cerr << ", " << baselined << " baselined";
    }
    std::cerr << "\n";
  }
  return enforced == 0 ? 0 : 1;
}
