// slowcc_sweep — parallel experiment-orchestration driver.
//
// Expands a parameter grid (algorithm x bandwidth x RTT x swept
// parameter x trials) over one registered experiment, runs every trial
// concurrently with a work-stealing thread pool, and reduces the rows
// to per-cell statistics (mean / stddev / 95% CI / percentiles).
//
// Examples:
//   slowcc_sweep --list
//   slowcc_sweep --experiment static_compat --algorithms tcp,tfrc:6
//       --trials 4 --jobs 8 --duration-scale 0.1
//   slowcc_sweep --experiment oscillation --algorithms tcp:8,tcp:2,tfrc:6
//       --sweep on_off_length=0.05,0.2,0.8 --trials 3 --out /tmp/fig14
//   slowcc_sweep --spec sweep.spec --jobs 8 --selfcheck
//
// With --out PREFIX, writes PREFIX.trials.{jsonl,csv} and
// PREFIX.cells.{jsonl,csv}; otherwise prints an aggregate table and the
// per-cell JSON lines to stdout. --selfcheck re-runs the whole sweep
// single-threaded and byte-compares the serialized results — the
// determinism guarantee the subsystem is built around.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/registry.hpp"
#include "exp/result_sink.hpp"
#include "exp/sweep_spec.hpp"

using namespace slowcc;

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --list                       list registered experiments and exit\n"
      "  --spec FILE                  load a sweep spec file (key = value "
      "lines)\n"
      "  --experiment NAME            experiment to run\n"
      "  --algorithms A,B,...         algorithm tokens (tcp, tcp:8, "
      "tfrc:6:c, tcp+tfrc:6)\n"
      "  --bandwidths-mbps X,Y        bottleneck bandwidth axis\n"
      "  --rtts-ms X,Y                base-RTT axis\n"
      "  --sweep NAME=V1,V2,...       sweep an experiment parameter\n"
      "  --set NAME=VALUE             fix an experiment parameter\n"
      "  --trials N                   replicates per grid cell (default 1)\n"
      "  --base-seed S                master seed (default 1)\n"
      "  --duration-scale F           scale all experiment timelines\n"
      "  --jobs N                     worker threads (default: all cores)\n"
      "  --out PREFIX                 write PREFIX.trials/.cells "
      ".jsonl/.csv\n"
      "  --selfcheck                  verify jobs=N output == jobs=1 "
      "output\n"
      "  --quiet                      no progress on stderr\n",
      argv0);
  return code;
}

void list_experiments() {
  for (const exp::Experiment& e : exp::experiments()) {
    std::printf("%-16s %s\n", e.name.c_str(), e.description.c_str());
    std::string params;
    for (const std::string& p : e.params) {
      params += params.empty() ? "" : ", ";
      params += p;
    }
    std::printf("%-16s   params: %s\n", "", params.c_str());
  }
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "slowcc_sweep: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

void print_cells_table(const std::vector<exp::CellStats>& cells) {
  std::printf("%-52s %-28s %3s %12s %12s %12s\n", "cell", "metric", "n",
              "mean", "ci95", "stddev");
  for (const exp::CellStats& c : cells) {
    for (const exp::MetricStats& m : c.metrics) {
      std::printf("%-52s %-28s %3zu %12.4g %12.4g %12.4g\n", c.cell.c_str(),
                  m.name.c_str(), m.n, m.mean, m.ci95, m.stddev);
    }
    if (c.errors > 0) {
      std::printf("%-52s !! %zu trial(s) errored\n", c.cell.c_str(),
                  c.errors);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  exp::SweepSpec spec;
  bool spec_loaded = false;
  int jobs = exp::ParallelRunner::default_jobs();
  std::string out_prefix;
  bool selfcheck = false;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "slowcc_sweep: %s needs a value\n",
                       arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        return usage(argv[0], 0);
      } else if (arg == "--list") {
        list_experiments();
        return 0;
      } else if (arg == "--spec") {
        spec = exp::SweepSpec::parse_file(value());
        spec_loaded = true;
      } else if (arg == "--experiment") {
        spec.experiment = value();
        spec_loaded = true;
      } else if (arg == "--algorithms") {
        spec.assign("algorithms", value());
      } else if (arg == "--bandwidths-mbps") {
        spec.assign("bandwidths_mbps", value());
      } else if (arg == "--rtts-ms") {
        spec.assign("rtts_ms", value());
      } else if (arg == "--sweep" || arg == "--set") {
        const std::string kv = value();
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          std::fprintf(stderr, "slowcc_sweep: %s expects NAME=VALUES\n",
                       arg.c_str());
          return 2;
        }
        const std::string prefix = arg == "--sweep" ? "sweep " : "set ";
        spec.assign(prefix + kv.substr(0, eq), kv.substr(eq + 1));
      } else if (arg == "--trials") {
        spec.assign("trials", value());
      } else if (arg == "--base-seed") {
        spec.assign("base_seed", value());
      } else if (arg == "--duration-scale") {
        spec.assign("duration_scale", value());
      } else if (arg == "--jobs") {
        jobs = std::atoi(value().c_str());
        if (jobs < 1) {
          std::fprintf(stderr, "slowcc_sweep: --jobs must be >= 1\n");
          return 2;
        }
      } else if (arg == "--out") {
        out_prefix = value();
      } else if (arg == "--selfcheck") {
        selfcheck = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        std::fprintf(stderr, "slowcc_sweep: unknown option %s\n",
                     arg.c_str());
        return usage(argv[0], 2);
      }
    }
    if (!spec_loaded) return usage(argv[0], 2);
    if (exp::find_experiment(spec.experiment) == nullptr) {
      std::fprintf(stderr,
                   "slowcc_sweep: unknown experiment '%s' (try --list)\n",
                   spec.experiment.c_str());
      return 2;
    }

    const std::vector<exp::TrialDesc> trials = spec.expand();
    if (!quiet) {
      std::fprintf(stderr, "slowcc_sweep: %s, %d jobs\n",
                   spec.describe().c_str(), jobs);
    }

    exp::ParallelRunner runner(jobs);
    if (!quiet) {
      runner.set_progress([](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\rslowcc_sweep: %zu/%zu trials", done, total);
        if (done == total) std::fprintf(stderr, "\n");
      });
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<exp::Row> rows = runner.run(trials);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::vector<exp::CellStats> cells = exp::aggregate(rows);
    if (!quiet) {
      std::fprintf(stderr, "slowcc_sweep: %zu trials in %.2f s wall\n",
                   rows.size(), wall);
    }

    if (selfcheck) {
      exp::ParallelRunner serial(1);
      const std::vector<exp::Row> rows1 = serial.run(trials);
      if (exp::rows_to_jsonl(rows1) != exp::rows_to_jsonl(rows) ||
          exp::cells_to_jsonl(exp::aggregate(rows1)) !=
              exp::cells_to_jsonl(cells)) {
        std::fprintf(stderr,
                     "slowcc_sweep: SELFCHECK FAILED — jobs=%d and jobs=1 "
                     "outputs differ\n",
                     jobs);
        return 1;
      }
      if (!quiet) {
        std::fprintf(stderr,
                     "slowcc_sweep: selfcheck ok (jobs=%d == jobs=1)\n",
                     jobs);
      }
    }

    int failed = 0;
    for (const exp::Row& r : rows) {
      if (!r.error.empty()) ++failed;
    }
    if (failed > 0) {
      std::fprintf(stderr, "slowcc_sweep: %d trial(s) errored\n", failed);
    }

    if (!out_prefix.empty()) {
      std::ostringstream tj, tc, cj, cc;
      exp::write_rows_jsonl(tj, rows);
      exp::write_rows_csv(tc, rows);
      exp::write_cells_jsonl(cj, cells);
      exp::write_cells_csv(cc, cells);
      if (!write_file(out_prefix + ".trials.jsonl", tj.str()) ||
          !write_file(out_prefix + ".trials.csv", tc.str()) ||
          !write_file(out_prefix + ".cells.jsonl", cj.str()) ||
          !write_file(out_prefix + ".cells.csv", cc.str())) {
        return 1;
      }
      if (!quiet) {
        std::fprintf(stderr, "slowcc_sweep: wrote %s.{trials,cells}"
                             ".{jsonl,csv}\n",
                     out_prefix.c_str());
      }
    } else {
      print_cells_table(cells);
      std::printf("\n");
      for (const exp::CellStats& c : cells) {
        std::printf("%s\n", c.to_json().c_str());
      }
    }
    return failed > 0 ? 1 : 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "slowcc_sweep: %s\n", ex.what());
    return 2;
  }
}
