// slowcc_sweep — parallel, crash-safe experiment-orchestration driver.
//
// Expands a parameter grid (algorithm x bandwidth x RTT x swept
// parameter x trials) over one registered experiment, runs every trial
// concurrently with a work-stealing thread pool under a quarantine
// (one throwing or hung trial becomes a failure row, never an abort),
// and reduces the rows to per-cell statistics (mean / stddev / 95% CI
// / percentiles) plus a per-cell failure manifest.
//
// Examples:
//   slowcc_sweep --list
//   slowcc_sweep --experiment static_compat --algorithms tcp,tfrc:6
//       --trials 4 --jobs 8 --duration-scale 0.1
//   slowcc_sweep --experiment oscillation --algorithms tcp:8,tcp:2,tfrc:6
//       --sweep on_off_length=0.05,0.2,0.8 --trials 3 --out /tmp/fig14
//   slowcc_sweep --spec sweep.spec --jobs 8 --selfcheck
//   slowcc_sweep --spec sweep.spec --resume /tmp/ckpt --max-attempts 2
//       --trial-wall-seconds 300
//   slowcc_sweep --spec specs/wifi_jitter_burst.toml --algorithms
//       tcp,tfrc:6 --trials 3 --sweep burst_loss=0.2,0.5 --fleet /tmp/f
//
// --spec accepts two formats: a legacy key=value sweep file, or a
// declarative scenario spec (*.toml, see DESIGN.md SS12). A .toml spec
// is compiled and registered as a first-class experiment named after
// its [scenario] name; --algorithms fills its "$algorithm" hole and
// --sweep/--set drive its declared [params].
//
// With --out PREFIX, writes PREFIX.trials.{jsonl,csv},
// PREFIX.cells.{jsonl,csv}, and PREFIX.manifest.jsonl; otherwise
// prints an aggregate table and the per-cell JSON lines to stdout.
// --resume DIR makes the run crash-safe: every finished trial is
// journaled (append + flush) into DIR, final outputs land in DIR via
// atomic tmp+rename, and re-running the same command after a crash —
// or a SIGKILL — re-executes only the failed/missing trials, yielding
// byte-identical trials/cells files to an uninterrupted run.
// --selfcheck re-runs the executed trials single-threaded and
// byte-compares the serialized results — the determinism guarantee the
// subsystem is built around.
// --fleet DIR joins (or starts) a multi-process drain of DIR: N
// invocations with distinct --worker-id cooperatively claim trials
// through per-trial lease files, survive sibling crashes (stale leases
// are broken after --lease-ttl), and converge to the same canonical
// journal.jsonl and finals a --jobs 1 run produces. A SIGTERM'd or
// I/O-degraded worker finishes its in-flight trial, releases its
// leases, and exits with code 4; the survivors finish the grid.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/aggregator.hpp"
#include "exp/checkpoint.hpp"
#include "exp/fleet.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/registry.hpp"
#include "exp/result_sink.hpp"
#include "exp/serialize.hpp"
#include "exp/sweep_spec.hpp"
#include "spec/spec_registry.hpp"

using namespace slowcc;

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --list                       list registered experiments (incl. "
      "loaded --spec scenarios) and exit\n"
      "  --spec PATH                  load a sweep spec file (key = value "
      "lines), a scenario spec (*.toml), or a directory of scenario specs "
      "(every *.toml, sorted)\n"
      "  --experiment NAME            experiment to run\n"
      "  --algorithms A,B,...         algorithm tokens (tcp, tcp:8, "
      "tfrc:6:c, tcp+tfrc:6)\n"
      "  --bandwidths-mbps X,Y        bottleneck bandwidth axis\n"
      "  --rtts-ms X,Y                base-RTT axis\n"
      "  --sweep NAME=V1,V2,...       sweep an experiment parameter\n"
      "  --set NAME=VALUE             fix an experiment parameter\n"
      "  --trials N                   replicates per grid cell (default 1)\n"
      "  --base-seed S                master seed (default 1)\n"
      "  --duration-scale F           scale all experiment timelines\n"
      "  --jobs N                     worker threads (default: all cores)\n"
      "  --max-attempts N             retries per failed trial (default 1 = "
      "no retry)\n"
      "  --trial-max-events N         per-trial simulator event budget "
      "(deterministic deadline)\n"
      "  --trial-wall-seconds S       per-trial wall-clock backstop "
      "(hang killer)\n"
      "  --trial-max-bytes B[k|m|g]   per-trial modeled-memory budget; a "
      "trial crossing it aborts as resource-exhausted (one retry at half "
      "budget, then quarantine)\n"
      "  --trial-weight-cap N         admission-weight ceiling: a weight-w "
      "trial occupies w of --jobs while it runs (default 4)\n"
      "  --chaos P                    inject a deterministic synthetic "
      "failure into each attempt with probability P (self-test)\n"
      "  --resume DIR                 crash-safe checkpointed run in DIR; "
      "re-running resumes it\n"
      "  --out PREFIX                 write PREFIX.trials/.cells/.manifest "
      "files\n"
      "  --selfcheck                  verify jobs=N output == jobs=1 "
      "output\n"
      "  --fleet DIR                  join a multi-process drain of DIR "
      "(lease-claimed trials; excludes --resume/--out/--selfcheck)\n"
      "  --worker-id ID               this fleet worker's id "
      "(default: pid-derived)\n"
      "  --lease-ttl S                seconds a lease may sit unchanged "
      "before siblings break it (default 10)\n"
      "  --heartbeat S                lease refresh cadence, < ttl/2 "
      "(default ttl/5)\n"
      "  --max-lease-breaks N         claim generations before a trial is "
      "quarantined as lease-expired (default 3)\n"
      "  --fleet-poll S               base wait between drain rounds "
      "(default 0.25)\n"
      "  --mem-high-water F           fleet: stop claiming trials while "
      "system memory use >= F (fraction; 0 disables; exit 4 after "
      "sustained pressure)\n"
      "  --quiet                      no progress on stderr\n"
      "exit codes: 0 ok, 1 trial failures, 2 usage/config error, "
      "4 fleet worker degraded (siblings finish the grid)\n",
      argv0);
  return code;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_sigterm(int) { g_stop_requested = 1; }

void list_experiments() {
  for (const exp::Experiment& e : exp::experiments()) {
    std::printf("%-16s %s\n", e.name.c_str(), e.description.c_str());
    std::string params;
    for (const std::string& p : e.params) {
      params += params.empty() ? "" : ", ";
      params += p;
    }
    std::printf("%-16s   params: %s\n", "", params.c_str());
  }
}

/// Parse a byte count with an optional k/m/g suffix (powers of 1024):
/// "64m" == 67108864. Returns false on a malformed count.
bool parse_byte_count(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long base = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  std::uint64_t mult = 1;
  if (*end == 'k' || *end == 'K') {
    mult = std::uint64_t{1} << 10;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    mult = std::uint64_t{1} << 20;
    ++end;
  } else if (*end == 'g' || *end == 'G') {
    mult = std::uint64_t{1} << 30;
    ++end;
  }
  if (*end != '\0') return false;
  *out = static_cast<std::uint64_t>(base) * mult;
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::string err;
  if (!exp::write_file_atomic(path, content, &err)) {
    std::fprintf(stderr, "slowcc_sweep: %s\n", err.c_str());
    return false;
  }
  return true;
}

void print_cells_table(const std::vector<exp::CellStats>& cells) {
  std::printf("%-52s %-28s %3s %12s %12s %12s\n", "cell", "metric", "n",
              "mean", "ci95", "stddev");
  for (const exp::CellStats& c : cells) {
    for (const exp::MetricStats& m : c.metrics) {
      std::printf("%-52s %-28s %3zu %12.4g %12.4g %12.4g\n", c.cell.c_str(),
                  m.name.c_str(), m.n, m.mean, m.ci95, m.stddev);
    }
    if (c.errors > 0) {
      std::printf("%-52s !! %zu trial(s) errored\n", c.cell.c_str(),
                  c.errors);
    }
  }
}

/// Removes its files on every exit path — the selfcheck comparison
/// dumps must never outlive the process, pass or fail.
class TempFileGuard {
 public:
  ~TempFileGuard() {
    std::error_code ec;
    for (const std::string& p : paths_) std::filesystem::remove(p, ec);
  }
  void track(std::string path) { paths_.push_back(std::move(path)); }

 private:
  std::vector<std::string> paths_;
};

/// Canonical fingerprint of the fault-tolerance policy, stored in a
/// checkpoint so a resume under different flags at least warns.
std::string policy_text(const exp::RunnerPolicy& p) {
  std::string out;
  out += "max_attempts = " + std::to_string(p.max_attempts) + "\n";
  out += "chaos = " + exp::json_number(p.chaos_rate) + "\n";
  out += "trial_max_events = " + std::to_string(p.max_trial_events) + "\n";
  out += "trial_wall_seconds = " +
         exp::json_number(p.max_trial_wall_seconds) + "\n";
  out += "trial_max_bytes = " + std::to_string(p.max_trial_bytes) + "\n";
  out += "trial_weight_cap = " + std::to_string(p.trial_weight_cap) + "\n";
  return out;
}

/// First line where the two serializations diverge (diagnostics).
void report_divergence(const std::string& a, const std::string& b) {
  std::size_t line = 1;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const std::size_t ea = a.find('\n', ia);
    const std::size_t eb = b.find('\n', ib);
    const std::string la = a.substr(ia, ea - ia);
    const std::string lb = b.substr(ib, eb - ib);
    if (la != lb) {
      std::fprintf(stderr,
                   "slowcc_sweep: first divergence at line %zu:\n"
                   "  jobs=N: %s\n  jobs=1: %s\n",
                   line, la.c_str(), lb.c_str());
      return;
    }
    if (ea == std::string::npos || eb == std::string::npos) break;
    ia = ea + 1;
    ib = eb + 1;
    ++line;
  }
  std::fprintf(stderr, "slowcc_sweep: outputs diverge in length\n");
}

}  // namespace

int main(int argc, char** argv) {
  exp::SweepSpec spec;
  exp::RunnerPolicy policy;
  bool spec_loaded = false;
  bool list_requested = false;
  bool algorithms_set = false;
  // Every scenario spec (*.toml) loaded via --spec; all are registered
  // as experiments, and the one matching spec.experiment (resolved
  // after parsing) is the sweep target.
  std::vector<slowcc::spec::RegisteredScenario> scenarios;
  int jobs = exp::ParallelRunner::default_jobs();
  std::string out_prefix;
  std::string resume_dir;
  std::string fleet_dir;
  std::string worker_id;
  double lease_ttl = 10.0;
  double heartbeat = 0.0;  // 0 = derive ttl/5
  double fleet_poll = 0.25;
  int max_lease_breaks = 3;
  double mem_high_water = 0.0;
  bool selfcheck = false;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "slowcc_sweep: %s needs a value\n",
                       arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        return usage(argv[0], 0);
      } else if (arg == "--list") {
        // Deferred past argument parsing so later --spec loads still
        // land in the listing.
        list_requested = true;
      } else if (arg == "--spec") {
        const std::string path = value();
        std::error_code dir_ec;
        if (std::filesystem::is_directory(path, dir_ec)) {
          // A directory of scenario specs: register every *.toml in
          // sorted order (stable --list). With exactly one spec it is
          // the sweep target; otherwise pick one with --experiment.
          std::vector<std::string> files;
          for (const auto& entry :
               std::filesystem::directory_iterator(path)) {
            if (entry.path().extension() == ".toml") {
              files.push_back(entry.path().string());
            }
          }
          std::sort(files.begin(), files.end());
          if (files.empty()) {
            std::fprintf(stderr,
                         "slowcc_sweep: --spec directory %s holds no "
                         "*.toml scenario specs\n",
                         path.c_str());
            return 2;
          }
          for (const std::string& f : files) {
            scenarios.push_back(slowcc::spec::load_spec_file(f));
          }
          if (files.size() == 1) {
            spec.experiment = scenarios.back().experiment;
          }
        } else if (path.size() >= 5 &&
                   path.compare(path.size() - 5, 5, ".toml") == 0) {
          scenarios.push_back(slowcc::spec::load_spec_file(path));
          spec.experiment = scenarios.back().experiment;
        } else {
          spec = exp::SweepSpec::parse_file(path);
        }
        spec_loaded = true;
      } else if (arg == "--experiment") {
        spec.experiment = value();
        spec_loaded = true;
      } else if (arg == "--algorithms") {
        spec.assign("algorithms", value());
        algorithms_set = true;
      } else if (arg == "--bandwidths-mbps") {
        spec.assign("bandwidths_mbps", value());
      } else if (arg == "--rtts-ms") {
        spec.assign("rtts_ms", value());
      } else if (arg == "--sweep" || arg == "--set") {
        const std::string kv = value();
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          std::fprintf(stderr, "slowcc_sweep: %s expects NAME=VALUES\n",
                       arg.c_str());
          return 2;
        }
        const std::string prefix = arg == "--sweep" ? "sweep " : "set ";
        spec.assign(prefix + kv.substr(0, eq), kv.substr(eq + 1));
      } else if (arg == "--trials") {
        spec.assign("trials", value());
      } else if (arg == "--base-seed") {
        spec.assign("base_seed", value());
      } else if (arg == "--duration-scale") {
        spec.assign("duration_scale", value());
      } else if (arg == "--jobs") {
        jobs = std::atoi(value().c_str());
        if (jobs < 1) {
          std::fprintf(stderr, "slowcc_sweep: --jobs must be >= 1\n");
          return 2;
        }
      } else if (arg == "--max-attempts") {
        policy.max_attempts = std::atoi(value().c_str());
      } else if (arg == "--trial-max-events") {
        policy.max_trial_events =
            std::strtoull(value().c_str(), nullptr, 10);
      } else if (arg == "--trial-wall-seconds") {
        policy.max_trial_wall_seconds = std::atof(value().c_str());
      } else if (arg == "--trial-max-bytes") {
        const std::string v = value();
        if (!parse_byte_count(v, &policy.max_trial_bytes)) {
          std::fprintf(stderr,
                       "slowcc_sweep: --trial-max-bytes expects "
                       "BYTES[k|m|g]: '%s'\n",
                       v.c_str());
          return 2;
        }
      } else if (arg == "--trial-weight-cap") {
        policy.trial_weight_cap = std::atoi(value().c_str());
      } else if (arg == "--mem-high-water") {
        mem_high_water = std::atof(value().c_str());
      } else if (arg == "--chaos") {
        policy.chaos_rate = std::atof(value().c_str());
      } else if (arg == "--resume") {
        resume_dir = value();
      } else if (arg == "--fleet") {
        fleet_dir = value();
      } else if (arg == "--worker-id") {
        worker_id = value();
      } else if (arg == "--lease-ttl") {
        lease_ttl = std::atof(value().c_str());
      } else if (arg == "--heartbeat") {
        heartbeat = std::atof(value().c_str());
      } else if (arg == "--fleet-poll") {
        fleet_poll = std::atof(value().c_str());
      } else if (arg == "--max-lease-breaks") {
        max_lease_breaks = std::atoi(value().c_str());
      } else if (arg == "--out") {
        out_prefix = value();
      } else if (arg == "--selfcheck") {
        selfcheck = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        std::fprintf(stderr, "slowcc_sweep: unknown option %s\n",
                     arg.c_str());
        return usage(argv[0], 2);
      }
    }
    if (list_requested) {
      list_experiments();
      return 0;
    }
    if (!spec_loaded) return usage(argv[0], 2);
    if (spec.experiment.empty() && !scenarios.empty()) {
      std::fprintf(stderr,
                   "slowcc_sweep: --spec loaded %zu scenarios; pick one "
                   "with --experiment NAME (or --list to enumerate)\n",
                   scenarios.size());
      return 2;
    }
    const slowcc::spec::RegisteredScenario* scenario = nullptr;
    for (const slowcc::spec::RegisteredScenario& s : scenarios) {
      if (s.experiment == spec.experiment) {
        scenario = &s;
        break;
      }
    }
    if (scenario != nullptr) {
      if (!algorithms_set) {
        // No --algorithms: run the scenario's declared default.
        spec.algorithms = {scenario->default_algorithm};
      } else if (!scenario->uses_algorithm_hole &&
                 (spec.algorithms.size() != 1 ||
                  spec.algorithms[0] != scenario->default_algorithm)) {
        std::fprintf(stderr,
                     "slowcc_sweep: scenario '%s' pins every [[flows]] "
                     "algorithm (no \"$algorithm\" hole) — --algorithms "
                     "cannot vary it\n",
                     scenario->experiment.c_str());
        return 2;
      }
      // Swept/fixed parameters must be declared in [params]; failing
      // here beats failing inside every trial of the grid.
      const auto known_param = [&](const std::string& name) {
        if (scenario->spec->find_param(name) != nullptr) return true;
        std::fprintf(stderr,
                     "slowcc_sweep: scenario '%s' declares no [params] "
                     "entry '%s'\n",
                     scenario->experiment.c_str(), name.c_str());
        return false;
      };
      if (!spec.sweep_param.empty() && !known_param(spec.sweep_param)) {
        return 2;
      }
      for (const auto& [name, fixed_value] : spec.fixed) {
        (void)fixed_value;
        if (!known_param(name)) return 2;
      }
      // The scenario's [limits] budgets are policy defaults: explicit
      // --trial-max-events / --trial-max-bytes flags win.
      if (policy.max_trial_events == 0 &&
          scenario->spec->limits.max_events > 0) {
        policy.max_trial_events =
            static_cast<std::uint64_t>(scenario->spec->limits.max_events);
      }
      if (policy.max_trial_bytes == 0 &&
          scenario->spec->limits.max_bytes > 0) {
        policy.max_trial_bytes =
            static_cast<std::uint64_t>(scenario->spec->limits.max_bytes);
      }
    }
    if (exp::find_experiment(spec.experiment) == nullptr) {
      std::fprintf(stderr,
                   "slowcc_sweep: unknown experiment '%s' (try --list)\n",
                   spec.experiment.c_str());
      return 2;
    }
    policy.chaos_seed = spec.base_seed;

    if (!fleet_dir.empty()) {
      if (!resume_dir.empty() || !out_prefix.empty() || selfcheck) {
        std::fprintf(stderr,
                     "slowcc_sweep: --fleet excludes --resume, --out, and "
                     "--selfcheck (the fleet directory is the output)\n");
        return 2;
      }
      // SIGTERM asks for a graceful exit: finish the in-flight trial,
      // release leases, exit 4. Siblings finish the grid.
      std::signal(SIGTERM, handle_sigterm);

      exp::FleetConfig fleet;
      fleet.dir = fleet_dir;
      fleet.worker_id =
          worker_id.empty() ? "w" + std::to_string(::getpid()) : worker_id;
      fleet.jobs = jobs;
      fleet.lease_ttl_seconds = lease_ttl;
      fleet.heartbeat_seconds = heartbeat > 0.0 ? heartbeat : lease_ttl / 5.0;
      fleet.poll_seconds = fleet_poll;
      fleet.max_lease_breaks = max_lease_breaks;
      fleet.mem_high_water = mem_high_water;
      fleet.jitter_seed = spec.base_seed;
      fleet.policy = policy;
      fleet.should_stop = [] { return g_stop_requested != 0; };
      if (!quiet) {
        fleet.log = [](const std::string& msg) {
          std::fprintf(stderr, "slowcc_sweep: %s\n", msg.c_str());
        };
      }

      exp::FleetWorker worker(fleet);
      if (!quiet) {
        std::fprintf(stderr,
                     "slowcc_sweep: fleet worker %s joining %s (%s)\n",
                     fleet.worker_id.c_str(), fleet_dir.c_str(),
                     spec.describe().c_str());
      }
      const exp::FleetReport report = worker.run(spec, policy_text(policy));
      // The one-line summary (incl. the torn-tail flag — a shard that
      // ended mid-write somewhere along the drain).
      std::fprintf(
          stderr,
          "slowcc_sweep: fleet worker %s: %s after %zu round(s) — "
          "%zu run, %zu discarded (lease lost), %zu leases broken, "
          "%zu quarantined, %zu failed; %zu journal lines, torn tail: "
          "%s\n",
          fleet.worker_id.c_str(),
          report.outcome == exp::FleetOutcome::kDrained ? "grid drained"
          : report.outcome == exp::FleetOutcome::kDegraded
              ? ("degraded (" + report.detail + ")").c_str()
              : ("error (" + report.detail + ")").c_str(),
          report.rounds, report.trials_run, report.rows_discarded,
          report.leases_broken, report.quarantined, report.rows_failed,
          report.journal_lines, report.torn_tail ? "yes" : "no");
      switch (report.outcome) {
        case exp::FleetOutcome::kDrained:
          return report.rows_failed > 0 ? 1 : 0;
        case exp::FleetOutcome::kDegraded:
          return 4;
        case exp::FleetOutcome::kError:
          break;
      }
      return 2;
    }

    const std::vector<exp::TrialDesc> all_trials = spec.expand();
    if (!quiet) {
      std::fprintf(stderr, "slowcc_sweep: %s, %d jobs\n",
                   spec.describe().c_str(), jobs);
    }

    // Admission weight from the registry: a weight-w experiment's
    // trials occupy w of the runner's capacity units while running
    // (memory-heavy trials don't all start at once). Weights only
    // schedule; they never change row content.
    const auto weight_of = [](const exp::TrialDesc& d) {
      const exp::Experiment* e = exp::find_experiment(d.experiment);
      return e != nullptr ? e->weight : 1;
    };

    exp::ParallelRunner runner(jobs);
    runner.set_policy(policy);
    runner.set_weight_fn(weight_of);

    // Checkpoint: recover finished work, journal new work.
    std::unique_ptr<exp::Checkpoint> checkpoint;
    std::vector<exp::TrialDesc> trials = all_trials;
    std::vector<exp::Row> recovered;
    if (!resume_dir.empty()) {
      checkpoint = std::make_unique<exp::Checkpoint>(resume_dir);
      std::string warning;
      const bool resuming =
          checkpoint->open(spec, policy_text(policy), &warning);
      if (!warning.empty()) {
        std::fprintf(stderr, "slowcc_sweep: warning: %s\n", warning.c_str());
      }
      if (resuming) {
        exp::Checkpoint::Plan plan = checkpoint->plan(all_trials);
        if (!quiet) {
          std::fprintf(stderr,
                       "slowcc_sweep: resume: %zu/%zu trials recovered "
                       "(%zu/%zu cells complete), %zu to run, torn tail: "
                       "%s\n",
                       plan.recovered.size(), all_trials.size(),
                       plan.cells_done, plan.cells_total,
                       plan.pending.size(),
                       plan.torn_tail
                           ? "yes (killed mid-write; partial line ignored)"
                           : "no");
        }
        trials = std::move(plan.pending);
        recovered = std::move(plan.recovered);
      }
      runner.set_on_row(
          [&checkpoint](const exp::Row& r) { checkpoint->record(r); });
    }

    if (!quiet && !trials.empty()) {
      runner.set_progress([](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\rslowcc_sweep: %zu/%zu trials", done, total);
        if (done == total) std::fprintf(stderr, "\n");
      });
    }

    // slowcc-lint: allow(no-wall-clock) operator-facing elapsed-time display
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<exp::Row> rows = runner.run(trials);
    // slowcc-lint: allow(no-wall-clock) operator-facing elapsed-time display
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();

    if (selfcheck) {
      // The comparison dumps are real files (handy to diff by hand when
      // this ever fires) but are removed on every exit path.
      TempFileGuard tmp_guard;
      exp::ParallelRunner serial(1);
      serial.set_policy(policy);
      serial.set_weight_fn(weight_of);
      const std::vector<exp::Row> rows1 = serial.run(trials);
      const std::string got = exp::rows_to_jsonl(rows);
      const std::string want = exp::rows_to_jsonl(rows1);
      const std::string tmp_base =
          (out_prefix.empty() ? std::string("slowcc_sweep") : out_prefix) +
          ".selfcheck";
      if (write_file(tmp_base + ".jobsN.jsonl", got)) {
        tmp_guard.track(tmp_base + ".jobsN.jsonl");
      }
      if (write_file(tmp_base + ".jobs1.jsonl", want)) {
        tmp_guard.track(tmp_base + ".jobs1.jsonl");
      }
      if (got != want ||
          exp::cells_to_jsonl(exp::aggregate(rows1)) !=
              exp::cells_to_jsonl(exp::aggregate(rows))) {
        std::fprintf(stderr,
                     "slowcc_sweep: SELFCHECK FAILED — jobs=%d and jobs=1 "
                     "outputs differ\n",
                     jobs);
        report_divergence(got, want);
        return 1;
      }
      if (!quiet) {
        std::fprintf(stderr,
                     "slowcc_sweep: selfcheck ok (jobs=%d == jobs=1)\n",
                     jobs);
      }
    }

    // Merge recovered and fresh rows back into trial-id order.
    rows.insert(rows.end(), std::make_move_iterator(recovered.begin()),
                std::make_move_iterator(recovered.end()));
    std::sort(rows.begin(), rows.end(),
              [](const exp::Row& a, const exp::Row& b) {
                return a.trial_id < b.trial_id;
              });
    const std::vector<exp::CellStats> cells = exp::aggregate(rows);
    if (!quiet) {
      std::fprintf(stderr, "slowcc_sweep: %zu trials in %.2f s wall\n",
                   rows.size(), wall);
    }

    std::size_t failed = 0;
    std::vector<std::string> kinds;
    for (const exp::Row& r : rows) {
      if (r.error.empty()) continue;
      ++failed;
      const std::string kind =
          r.outcome.error_kind.empty() ? "exception" : r.outcome.error_kind;
      if (std::find(kinds.begin(), kinds.end(), kind) == kinds.end()) {
        kinds.push_back(kind);
      }
    }
    if (failed > 0) {
      std::string kind_list;
      for (const std::string& k : kinds) {
        kind_list += kind_list.empty() ? "" : ", ";
        kind_list += k;
      }
      std::fprintf(stderr,
                   "slowcc_sweep: %zu trial(s) quarantined as failed "
                   "(%s); see the failure manifest\n",
                   failed, kind_list.c_str());
    }

    if (checkpoint != nullptr) {
      std::string err;
      if (!checkpoint->finalize(rows, cells, &err)) {
        std::fprintf(stderr, "slowcc_sweep: %s\n", err.c_str());
        return 2;
      }
      if (!quiet) {
        std::fprintf(stderr,
                     "slowcc_sweep: checkpoint finalized in %s "
                     "(trials/cells/manifest)\n",
                     resume_dir.c_str());
      }
    }
    if (!out_prefix.empty()) {
      std::ostringstream tj, tc, cj, cc, mf;
      exp::write_rows_jsonl(tj, rows);
      exp::write_rows_csv(tc, rows);
      exp::write_cells_jsonl(cj, cells);
      exp::write_cells_csv(cc, cells);
      exp::write_manifest_jsonl(mf, rows);
      if (!write_file(out_prefix + ".trials.jsonl", tj.str()) ||
          !write_file(out_prefix + ".trials.csv", tc.str()) ||
          !write_file(out_prefix + ".cells.jsonl", cj.str()) ||
          !write_file(out_prefix + ".cells.csv", cc.str()) ||
          !write_file(out_prefix + ".manifest.jsonl", mf.str())) {
        return 1;
      }
      if (!quiet) {
        std::fprintf(stderr,
                     "slowcc_sweep: wrote %s.{trials,cells}.{jsonl,csv} "
                     "and %s.manifest.jsonl\n",
                     out_prefix.c_str(), out_prefix.c_str());
      }
    }
    if (checkpoint == nullptr && out_prefix.empty()) {
      print_cells_table(cells);
      std::printf("\n");
      for (const exp::CellStats& c : cells) {
        std::printf("%s\n", c.to_json().c_str());
      }
    }
    return failed > 0 ? 1 : 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "slowcc_sweep: %s\n", ex.what());
    return 2;
  }
}
