// bench_report: perf-regression pipeline runner for the engine
// micro-benchmarks.
//
// Generate mode runs bench/micro_engine with google-benchmark's JSON
// output, pairs the per-variant runs (BM_X/heap vs BM_X/wheel for the
// event engines, BM_X/scalar vs BM_X/pooled for the packet paths) and
// writes BENCH_engine.json (schema slowcc.bench_engine.v1) with
// ns-per-op, items-per-second, the wheel:heap and pooled:scalar
// speedups per benchmark, and the benchmark child's peak RSS
// (getrusage(RUSAGE_CHILDREN), so a memory regression in the engines
// shows up next to the timing numbers). Validate mode re-reads such a
// file and checks the schema and that both variants are present for
// every required benchmark — that is the bench_smoke ctest — and can
// check minimum speedups: `--require-speedup 1.5` (wheel:heap) and
// `--require-packet-speedup 2.0` (pooled:scalar, the ROADMAP item 3
// acceptance floor) fail validation below the floor (for a dedicated
// quiet perf runner), while the --advise-* spellings only warn (for
// shared/virtualized CI, where wall-clock ratios between two
// in-process benchmarks are not stable enough to gate on):
//
//   bench_report --bench build/bench/micro_engine --out BENCH_engine.json
//   bench_report --validate BENCH_engine.json [--require-speedup 1.5 |
//                                              --advise-speedup 1.5]
//                [--require-packet-speedup 2.0 |
//                 --advise-packet-speedup 2.0]
//
// Exit codes: 0 ok, 1 validation failure, 2 usage or execution error.

#include <sys/resource.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr const char* kSchema = "slowcc.bench_engine.v1";
// The acceptance benchmarks: both engines must report for each.
const std::vector<std::string> kRequiredBenchmarks = {
    "BM_EventQueueScheduleRun", "BM_EventQueueCancelHeavy"};
// The packet hot-path macro-benchmarks: both packet paths (scalar and
// pooled) must report for each, compared as pooled_speedup.
const std::vector<std::string> kRequiredPacketBenchmarks = {
    "BM_SaturatedDumbbell"};

struct Sample {
  std::string bench;
  std::string engine;
  double ns_per_op = 0.0;
  double items_per_second = 0.0;
};

/// Run `cmd` and capture stdout. Returns false when the command could
/// not be started or exited non-zero.
bool slurp_command(const std::string& cmd, std::string* out) {
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out->append(buf.data(), n);
  }
  return pclose(pipe) == 0;
}

/// Extract `"key": <number>` from a JSON fragment; NaN-free: returns
/// false when the key is absent.
bool find_number(const std::string& text, const std::string& key,
                 double* value) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *value = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

/// Extract `"key": "<string>"` from a JSON fragment.
bool find_string(const std::string& text, const std::string& key,
                 std::string* value) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find('"', pos + needle.size());
  if (pos == std::string::npos) return false;
  const std::size_t end = text.find('"', pos + 1);
  if (end == std::string::npos) return false;
  *value = text.substr(pos + 1, end - pos - 1);
  return true;
}

/// Peak resident set of every waited-for child, in bytes (the
/// benchmark subprocess dominates). 0 when getrusage fails.
std::uint64_t children_peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_CHILDREN, &usage) != 0) return 0;
  if (usage.ru_maxrss <= 0) return 0;
  // ru_maxrss is KiB on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
}

double to_nanos(double value, const std::string& unit) {
  if (unit == "ns") return value;
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  return value * 1e9;  // "s"
}

/// Parse google-benchmark JSON output into per-engine samples. Chunks
/// the text on "name" keys — only benchmark entries carry that key.
std::vector<Sample> parse_benchmark_json(const std::string& text) {
  std::vector<Sample> samples;
  const std::string kNameKey = "\"name\":";
  std::size_t pos = text.find(kNameKey);
  while (pos != std::string::npos) {
    const std::size_t next = text.find(kNameKey, pos + kNameKey.size());
    const std::string chunk =
        text.substr(pos, next == std::string::npos ? std::string::npos
                                                   : next - pos);
    pos = next;
    std::string name;
    if (!find_string(chunk, "name", &name)) continue;
    const std::size_t slash = name.find('/');
    if (name.rfind("BM_", 0) != 0 || slash == std::string::npos) continue;
    double cpu_time = 0.0;
    double items = 0.0;
    std::string unit = "ns";
    if (!find_number(chunk, "cpu_time", &cpu_time)) continue;
    (void)find_string(chunk, "time_unit", &unit);
    (void)find_number(chunk, "items_per_second", &items);
    Sample s;
    s.bench = name.substr(0, slash);
    s.engine = name.substr(slash + 1);
    s.ns_per_op = to_nanos(cpu_time, unit);
    s.items_per_second = items;
    samples.push_back(std::move(s));
  }
  return samples;
}

/// Wall-clock of one full slowcc_lint run over the tree, in ms. The
/// linter sits on the edit-compile loop and in every CI run, so its
/// latency is tracked next to the engine numbers (cold, uncached — the
/// worst case a developer sees). Returns -1 when the run cannot start.
double time_lint_run(const std::string& lint_bin,
                     const std::string& lint_root) {
  const std::string cmd = lint_bin + " --root " + lint_root +
                          " src bench tools examples >/dev/null 2>&1";
  // slowcc-lint: allow(no-wall-clock) measuring the linter's own wall latency is the point of this row
  const auto begin = std::chrono::steady_clock::now();
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1.0;
  pclose(pipe);  // exit code irrelevant: the lint gate ran earlier in CI
  // slowcc-lint: allow(no-wall-clock) measuring the linter's own wall latency is the point of this row
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

int generate(const std::string& bench_bin, const std::string& out_path,
             const std::string& min_time, const std::string& lint_bin,
             const std::string& lint_root) {
  const std::string cmd = bench_bin +
                          " '--benchmark_filter=BM_EventQueue|BM_SaturatedDumbbell'"
                          " --benchmark_format=json"
                          " --benchmark_min_time=" +
                          min_time + " 2>/dev/null";
  std::string json;
  if (!slurp_command(cmd, &json)) {
    std::cerr << "bench_report: failed to run '" << cmd << "'\n";
    return 2;
  }
  // Sampled right after pclose() reaped the benchmark child, so the
  // reading covers the whole benchmark run.
  const std::uint64_t peak_rss = children_peak_rss_bytes();
  const std::vector<Sample> samples = parse_benchmark_json(json);
  if (samples.empty()) {
    std::cerr << "bench_report: no BM_* samples in benchmark output\n";
    return 2;
  }

  // bench name -> engine -> sample
  std::map<std::string, std::map<std::string, Sample>> by_bench;
  for (const Sample& s : samples) by_bench[s.bench][s.engine] = s;

  double lint_wall_ms = -1.0;
  if (!lint_bin.empty()) {
    lint_wall_ms = time_lint_run(lint_bin, lint_root);
    if (lint_wall_ms < 0.0) {
      std::cerr << "bench_report: WARNING: could not run lint at " << lint_bin
                << " (lint_wall_ms omitted)\n";
    }
  }

  std::ostringstream out;
  out << "{\n  \"schema\": \"" << kSchema << "\",\n  \"peak_rss_bytes\": "
      << peak_rss << ",\n";
  if (lint_wall_ms >= 0.0) {
    out << "  \"lint_wall_ms\": " << lint_wall_ms << ",\n";
  }
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    out << "    {\"name\": \"" << s.bench << "\", \"engine\": \"" << s.engine
        << "\", \"ns_per_op\": " << s.ns_per_op
        << ", \"items_per_second\": " << s.items_per_second << "}"
        << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"comparisons\": [\n";
  std::vector<std::string> lines;
  for (const auto& [bench, engines] : by_bench) {
    const auto heap = engines.find("heap");
    const auto wheel = engines.find("wheel");
    if (heap != engines.end() && wheel != engines.end()) {
      std::ostringstream line;
      line << "    {\"name\": \"" << bench
           << "\", \"heap_ns_per_op\": " << heap->second.ns_per_op
           << ", \"wheel_ns_per_op\": " << wheel->second.ns_per_op
           << ", \"wheel_speedup\": "
           << (wheel->second.ns_per_op > 0.0
                   ? heap->second.ns_per_op / wheel->second.ns_per_op
                   : 0.0)
           << "}";
      lines.push_back(line.str());
    }
    const auto scalar = engines.find("scalar");
    const auto pooled = engines.find("pooled");
    if (scalar != engines.end() && pooled != engines.end()) {
      std::ostringstream line;
      line << "    {\"name\": \"" << bench
           << "\", \"scalar_ns_per_op\": " << scalar->second.ns_per_op
           << ", \"pooled_ns_per_op\": " << pooled->second.ns_per_op
           << ", \"pooled_speedup\": "
           << (pooled->second.ns_per_op > 0.0
                   ? scalar->second.ns_per_op / pooled->second.ns_per_op
                   : 0.0)
           << "}";
      lines.push_back(line.str());
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << lines[i] << (i + 1 < lines.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";

  std::ofstream file(out_path);
  if (!file.good()) {
    std::cerr << "bench_report: cannot write " << out_path << "\n";
    return 2;
  }
  file << out.str();
  std::cout << "bench_report: wrote " << out_path << " ("
            << samples.size() << " samples, " << lines.size()
            << " comparisons, peak_rss_bytes=" << peak_rss;
  if (lint_wall_ms >= 0.0) std::cout << ", lint_wall_ms=" << lint_wall_ms;
  std::cout << ")\n";
  return 0;
}

int validate(const std::string& path, double floor_speedup, bool advisory,
             double packet_floor, bool packet_advisory) {
  std::ifstream file(path);
  if (!file.good()) {
    std::cerr << "bench_report: cannot read " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << file.rdbuf();
  const std::string text = buf.str();

  std::string schema;
  if (!find_string(text, "schema", &schema) || schema != kSchema) {
    std::cerr << "bench_report: " << path << " missing schema \"" << kSchema
              << "\"\n";
    return 1;
  }
  // Peak RSS is informational (warn-only): older reports predate the
  // field, and absolute memory varies across runners.
  double peak_rss = 0.0;
  if (!find_number(text, "peak_rss_bytes", &peak_rss) || peak_rss <= 0.0) {
    std::cerr << "bench_report: WARNING: " << path
              << " has no peak_rss_bytes sample (not gating)\n";
  } else {
    std::cout << "bench_report: peak_rss_bytes="
              << static_cast<std::uint64_t>(peak_rss) << "\n";
  }
  // lint_wall_ms is likewise informational: present only when the
  // generator was pointed at a slowcc_lint binary.
  double lint_wall_ms = 0.0;
  if (find_number(text, "lint_wall_ms", &lint_wall_ms)) {
    std::cout << "bench_report: lint_wall_ms=" << lint_wall_ms << "\n";
  }
  int failures = 0;
  for (const std::string& bench : kRequiredBenchmarks) {
    for (const char* engine : {"heap", "wheel"}) {
      const std::string needle = "{\"name\": \"" + bench +
                                 "\", \"engine\": \"" + engine + "\"";
      if (text.find(needle) == std::string::npos) {
        std::cerr << "bench_report: " << path << " lacks " << bench << "/"
                  << engine << "\n";
        ++failures;
      }
    }
    const std::size_t cmp = text.find("{\"name\": \"" + bench +
                                      "\", \"heap_ns_per_op\"");
    if (cmp == std::string::npos) {
      std::cerr << "bench_report: " << path << " lacks a comparison for "
                << bench << "\n";
      ++failures;
      continue;
    }
    double speedup = 0.0;
    if (!find_number(text.substr(cmp), "wheel_speedup", &speedup) ||
        speedup <= 0.0) {
      std::cerr << "bench_report: " << path << " has no wheel_speedup for "
                << bench << "\n";
      ++failures;
    } else if (speedup < floor_speedup) {
      if (advisory) {
        std::cerr << "bench_report: WARNING: " << bench << " wheel_speedup "
                  << speedup << " below advisory floor " << floor_speedup
                  << " (not gating; ratios are unstable on shared runners)\n";
      } else {
        std::cerr << "bench_report: " << bench << " wheel_speedup " << speedup
                  << " below required " << floor_speedup << "\n";
        ++failures;
      }
    } else {
      std::cout << "bench_report: " << bench << " wheel_speedup=" << speedup
                << "\n";
    }
  }
  for (const std::string& bench : kRequiredPacketBenchmarks) {
    for (const char* engine : {"scalar", "pooled"}) {
      const std::string needle = "{\"name\": \"" + bench +
                                 "\", \"engine\": \"" + engine + "\"";
      if (text.find(needle) == std::string::npos) {
        std::cerr << "bench_report: " << path << " lacks " << bench << "/"
                  << engine << "\n";
        ++failures;
      }
    }
    const std::size_t cmp = text.find("{\"name\": \"" + bench +
                                      "\", \"scalar_ns_per_op\"");
    if (cmp == std::string::npos) {
      std::cerr << "bench_report: " << path << " lacks a comparison for "
                << bench << "\n";
      ++failures;
      continue;
    }
    double speedup = 0.0;
    if (!find_number(text.substr(cmp), "pooled_speedup", &speedup) ||
        speedup <= 0.0) {
      std::cerr << "bench_report: " << path << " has no pooled_speedup for "
                << bench << "\n";
      ++failures;
    } else if (speedup < packet_floor) {
      if (packet_advisory) {
        std::cerr << "bench_report: WARNING: " << bench << " pooled_speedup "
                  << speedup << " below advisory floor " << packet_floor
                  << " (not gating; ratios are unstable on shared runners)\n";
      } else {
        std::cerr << "bench_report: " << bench << " pooled_speedup " << speedup
                  << " below required " << packet_floor << "\n";
        ++failures;
      }
    } else {
      std::cout << "bench_report: " << bench << " pooled_speedup=" << speedup
                << "\n";
    }
  }
  if (failures == 0) std::cout << "bench_report: " << path << " valid\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench_bin;
  std::string out_path = "BENCH_engine.json";
  std::string validate_path;
  std::string min_time = "0.05";
  std::string lint_bin;
  std::string lint_root = ".";
  double floor_speedup = 0.0;
  bool speedup_advisory = false;
  double packet_floor = 0.0;
  bool packet_advisory = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_report: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bench") {
      bench_bin = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--min-time") {
      min_time = next();
    } else if (arg == "--lint") {
      lint_bin = next();
    } else if (arg == "--lint-root") {
      lint_root = next();
    } else if (arg == "--validate") {
      validate_path = next();
    } else if (arg == "--require-speedup") {
      floor_speedup = std::strtod(next(), nullptr);
      speedup_advisory = false;
    } else if (arg == "--advise-speedup") {
      floor_speedup = std::strtod(next(), nullptr);
      speedup_advisory = true;
    } else if (arg == "--require-packet-speedup") {
      packet_floor = std::strtod(next(), nullptr);
      packet_advisory = false;
    } else if (arg == "--advise-packet-speedup") {
      packet_floor = std::strtod(next(), nullptr);
      packet_advisory = true;
    } else {
      std::cerr << "usage: bench_report --bench <micro_engine> [--out F]"
                   " [--min-time S] [--lint <slowcc_lint> [--lint-root D]]"
                   " | --validate <F>"
                   " [--require-speedup X | --advise-speedup X]"
                   " [--require-packet-speedup X | --advise-packet-speedup X]\n";
      return 2;
    }
  }
  if (!validate_path.empty()) {
    return validate(validate_path, floor_speedup, speedup_advisory,
                    packet_floor, packet_advisory);
  }
  if (bench_bin.empty()) {
    std::cerr << "bench_report: need --bench or --validate\n";
    return 2;
  }
  return generate(bench_bin, out_path, min_time, lint_bin, lint_root);
}
