// Figure 13: link utilization f(20) and f(200) after the available
// bandwidth doubles (five of ten flows stop), for TCP(1/b), SQRT(1/b),
// and TFRC(b). TFRC runs with history discounting off, as in the paper.
#include "bench_util.hpp"
#include "scenario/fk_experiment.hpp"

using namespace slowcc;

namespace {

scenario::FkOutcome run(const scenario::FlowSpec& spec) {
  scenario::FkConfig cfg;
  cfg.spec = spec;
  cfg.stop_time = sim::Time::seconds(120.0);
  return run_fk(cfg);
}

}  // namespace

int main() {
  bench::header("Figure 13",
                "f(20) and f(200) after the available bandwidth doubles");
  bench::paper_note(
      "paper: TCP ~0.86 at f(20); TCP(1/8) ~0.75; TFRC(8) ~0.65; "
      "TCP(1/256)/TFRC(256) only ~0.60 at f(20) and 0.65-0.70 even after "
      "200 RTTs — slower mechanisms waste newly-available bandwidth");

  bench::row("%-12s %10s %10s %14s", "mechanism", "f(20)", "f(200)",
             "util before");
  double tcp_f20 = 0, tcp256_f20 = 0, tfrc8_f20 = 0, tcp256_f200 = 0;
  for (double g : {2.0, 8.0, 64.0, 256.0}) {
    const auto out = run(scenario::FlowSpec::tcp(g));
    bench::row("TCP(1/%-4.0f) %10.2f %10.2f %14.2f", g, out.f_values[0],
               out.f_values[1], out.utilization_before_stop);
    if (g == 2) tcp_f20 = out.f_values[0];
    if (g == 256) {
      tcp256_f20 = out.f_values[0];
      tcp256_f200 = out.f_values[1];
    }
  }
  for (double g : {2.0, 8.0, 64.0, 256.0}) {
    const auto out = run(scenario::FlowSpec::sqrt(g));
    bench::row("SQRT(1/%-3.0f) %10.2f %10.2f %14.2f", g, out.f_values[0],
               out.f_values[1], out.utilization_before_stop);
  }
  for (int k : {6, 8, 64, 256}) {
    auto spec = scenario::FlowSpec::tfrc(k);
    spec.tfrc_history_discounting = false;
    const auto out = run(spec);
    bench::row("TFRC(%-5d) %10.2f %10.2f %14.2f", k, out.f_values[0],
               out.f_values[1], out.utilization_before_stop);
    if (k == 8) tfrc8_f20 = out.f_values[0];
  }

  bench::verdict(tcp_f20 > 0.8 && tcp_f20 > tfrc8_f20 + 0.1 &&
                     tcp_f20 > tcp256_f20 + 0.2 && tcp256_f200 < 0.95,
                 "fast TCP reclaims the doubled bandwidth; TFRC(8) and the "
                 "very slow variants lag, the slowest still below full "
                 "utilization after 200 RTTs");
  return 0;
}
