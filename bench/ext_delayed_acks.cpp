// Extension: delayed acknowledgments. The paper's TCPs run without
// delayed ACKs (the response function's b = 1); with delayed ACKs the
// congestion window grows roughly half as fast per RTT, costing
// throughput at a given loss rate. This bench quantifies both effects.
#include "bench_util.hpp"
#include "cc/tcp_agent.hpp"
#include "cc/tcp_sink.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "traffic/loss_script.hpp"

using namespace slowcc;

namespace {

struct Result {
  double goodput_mbps;
  double acks_per_data;
};

Result run(bool delayed) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::Node& src = topo.add_node();
  net::Node& dst = topo.add_node();
  auto [fwd, rev] = topo.add_duplex(src, dst, 50e6, sim::Time::millis(25),
                                    300);
  (void)rev;
  cc::TcpSink sink(sim, dst);
  sink.set_delayed_acks(delayed);
  auto tcp = cc::TcpAgent::make_tcp(sim, src, dst.id(), sink.local_port(), 1);
  topo.compute_routes();

  // Fixed 1% Bernoulli loss isolates the window-growth effect.
  auto rng = std::make_shared<sim::Rng>(11);
  fwd->set_forced_drop_filter([rng](const net::Packet& p) {
    return p.type == net::PacketType::kData && rng->chance(0.01);
  });

  tcp->start();
  sim.run_until(sim::Time::seconds(120.0));
  Result r;
  r.goodput_mbps = sink.bytes_received() * 8.0 / 120.0 / 1e6;
  r.acks_per_data = static_cast<double>(sink.acks_sent()) /
                    static_cast<double>(sink.packets_received());
  return r;
}

}  // namespace

int main() {
  bench::header("Extension", "delayed acknowledgments vs the paper's TCPs");
  bench::paper_note(
      "the paper's TCPs send one ACK per segment; RFC 1122 delayed ACKs "
      "halve the ACK rate and slow window growth, lowering throughput at "
      "a fixed loss rate");

  const Result imm = run(false);
  const Result del = run(true);
  bench::row("%-18s %14s %16s", "mode", "goodput", "ACKs per segment");
  bench::row("%-18s %11.2f Mb/s %16.2f", "immediate ACKs", imm.goodput_mbps,
             imm.acks_per_data);
  bench::row("%-18s %11.2f Mb/s %16.2f", "delayed ACKs", del.goodput_mbps,
             del.acks_per_data);

  bench::verdict(del.acks_per_data < 0.75 * imm.acks_per_data &&
                     del.goodput_mbps < imm.goodput_mbps &&
                     del.goodput_mbps > 0.4 * imm.goodput_mbps,
                 "delayed ACKs halve the ACK stream and cost some (but not "
                 "catastrophic) throughput at fixed loss");
  return 0;
}
