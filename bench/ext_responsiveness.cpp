// Extension: empirical responsiveness and aggressiveness (the §3
// metrics the paper quotes but does not plot). Responsiveness = RTTs of
// persistent congestion (one loss per RTT) until the sending rate
// halves; TCP = 1, proposed TFRC = 4-6. Aggressiveness = max per-RTT
// rate increase absent congestion; for AIMD it is the parameter a.
#include "analysis/aimd_model.hpp"
#include "bench_util.hpp"
#include "cc/window_policy.hpp"
#include "scenario/responsiveness_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Extension (paper §3)",
                "empirical responsiveness & aggressiveness");
  bench::paper_note(
      "responsiveness of TCP is 1 RTT; currently proposed TFRC is 4-6 "
      "RTTs; TCP(b)'s analytic responsiveness is log_{1-b}(1/2); AIMD "
      "aggressiveness is the increase parameter a");

  bench::row("%-12s %16s %18s %18s", "mechanism", "resp (RTTs)",
             "analytic (RTTs)", "aggr (pkts/RTT)");
  double tcp_resp = 0, tfrc6_resp = 0;
  for (const auto& [label, spec, analytic] :
       std::initializer_list<
           std::tuple<const char*, scenario::FlowSpec, double>>{
           {"TCP(1/2)", scenario::FlowSpec::tcp(2),
            analysis::aimd_responsiveness_rtts(0.5)},
           {"TCP(1/8)", scenario::FlowSpec::tcp(8),
            analysis::aimd_responsiveness_rtts(1.0 / 8.0)},
           {"TCP(1/32)", scenario::FlowSpec::tcp(32),
            analysis::aimd_responsiveness_rtts(1.0 / 32.0)},
           {"SQRT(1/2)", scenario::FlowSpec::sqrt(2), -1.0},
           {"TFRC(6)", scenario::FlowSpec::tfrc(6), -1.0},
           {"TFRC(32)", scenario::FlowSpec::tfrc(32), -1.0},
       }) {
    scenario::ResponsivenessConfig cfg;
    cfg.spec = spec;
    const auto out = run_responsiveness(cfg);
    if (analytic >= 0) {
      bench::row("%-12s %16.0f %18.2f %18.2f", label,
                 out.responsiveness_rtts, analytic,
                 out.aggressiveness_pkts_per_rtt);
    } else {
      bench::row("%-12s %16.0f %18s %18.2f", label, out.responsiveness_rtts,
                 "-", out.aggressiveness_pkts_per_rtt);
    }
    if (std::string(label) == "TCP(1/2)") tcp_resp = out.responsiveness_rtts;
    if (std::string(label) == "TFRC(6)") tfrc6_resp = out.responsiveness_rtts;
  }

  bench::verdict(tcp_resp <= 4.0 && tfrc6_resp >= tcp_resp &&
                     tfrc6_resp <= 30.0,
                 "TCP halves its rate within a few RTTs of persistent "
                 "congestion; TFRC(6) is slower but bounded");
  return 0;
}
