// Figure 7: long-term fairness of TCP vs TFRC under a 3:1 square-wave
// oscillation in the available bandwidth, as a function of the CBR
// period.
#include "bench_util.hpp"
#include "scenario/fairness_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 7",
                "TCP vs TFRC throughput under 3:1 oscillating bandwidth");
  bench::paper_note(
      "with CBR periods between ~1 and ~10 s, TCP flows receive more "
      "throughput than TFRC; utilization is high for very short periods "
      "and dips around a period of 0.2 s (4 RTTs); TFRC never beats TCP "
      "in the long run");

  bench::row("%-10s %10s %10s %12s", "period(s)", "TCP mean", "TFRC mean",
             "utilization");
  bool tcp_wins_midrange = true;
  bool tfrc_never_wins_big = true;
  double util_short = 0, util_4rtt = 0;
  for (double period : {0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    scenario::FairnessConfig cfg;
    cfg.group_a = scenario::FlowSpec::tcp(2);
    cfg.group_b = scenario::FlowSpec::tfrc(6);
    cfg.cbr_period = sim::Time::seconds(period);
    cfg.measure = sim::Time::seconds(std::max(120.0, 15.0 * period));
    const auto out = run_fairness(cfg);
    bench::row("%-10.2f %10.2f %10.2f %12.2f", period, out.group_a_mean,
               out.group_b_mean, out.utilization);
    if (period >= 1.0 && period <= 8.0 &&
        out.group_a_mean <= out.group_b_mean) {
      tcp_wins_midrange = false;
    }
    if (out.group_b_mean > 1.15 * out.group_a_mean) {
      tfrc_never_wins_big = false;
    }
    if (period == 0.1) util_short = out.utilization;
    if (period == 0.2) util_4rtt = out.utilization;
  }
  bench::note("(throughput normalized by each flow's fair share of the "
              "average available bandwidth)");

  bench::verdict(tcp_wins_midrange && tfrc_never_wins_big,
                 "TCP receives more than TFRC at mid-range periods and "
                 "TFRC never significantly beats TCP");
  bench::note("utilization at period 0.1s=%.2f vs 0.2s (4 RTTs)=%.2f",
              util_short, util_4rtt);
  return 0;
}
