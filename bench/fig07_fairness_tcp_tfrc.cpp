// Figure 7: long-term fairness of TCP vs TFRC under a 3:1 square-wave
// oscillation in the available bandwidth, as a function of the CBR
// period. Each period is one grid cell run for several independent
// seeds through the parallel sweep runner; the table reports
// mean ± 95% CI per cell.
#include <algorithm>

#include "bench_util.hpp"
#include "exp/aggregator.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/sweep_spec.hpp"

using namespace slowcc;

namespace {
constexpr int kTrials = 3;
constexpr double kPeriods[] = {0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
}

int main() {
  bench::header("Figure 7",
                "TCP vs TFRC throughput under 3:1 oscillating bandwidth");
  bench::paper_note(
      "with CBR periods between ~1 and ~10 s, TCP flows receive more "
      "throughput than TFRC; utilization is high for very short periods "
      "and dips around a period of 0.2 s (4 RTTs); TFRC never beats TCP "
      "in the long run");

  // The measurement window scales with the period (>= 15 cycles), so
  // each period gets its own one-cell spec; the trial lists concatenate
  // into a single parallel run. Seeds derive from each cell's key, so
  // the concatenation cannot collide.
  std::vector<exp::TrialDesc> trials;
  for (const double period : kPeriods) {
    exp::SweepSpec sweep;
    sweep.experiment = "fairness";
    sweep.algorithms = {"tcp:2+tfrc:6"};
    sweep.fixed["cbr_period"] = period;
    sweep.fixed["measure"] = std::max(120.0, 15.0 * period);
    sweep.trials = kTrials;
    for (exp::TrialDesc d : sweep.expand()) {
      d.trial_id = trials.size();
      trials.push_back(std::move(d));
    }
  }
  const std::vector<exp::CellStats> cells =
      exp::aggregate(bench::run_hardened(trials));

  bench::row("%-10s %16s %16s %16s", "period(s)", "TCP mean", "TFRC mean",
             "utilization");
  bool tcp_wins_midrange = true;
  bool tfrc_never_wins_big = true;
  double util_short = 0, util_4rtt = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double period = kPeriods[i];
    const exp::MetricStats* tcp = cells[i].metric("group_a_mean");
    const exp::MetricStats* tfrc = cells[i].metric("group_b_mean");
    const exp::MetricStats* util = cells[i].metric("utilization");
    bench::row("%-10.2f %16s %16s %16s", period,
               bench::mean_ci(*tcp, "%.2f").c_str(),
               bench::mean_ci(*tfrc, "%.2f").c_str(),
               bench::mean_ci(*util, "%.2f").c_str());
    bench::emit(bench::json_row("fig07_fairness_tcp_tfrc")
                    .add("cbr_period_s", period)
                    .add("trials", static_cast<std::uint64_t>(tcp->n))
                    .add("tcp_mean", tcp->mean)
                    .add("tcp_ci95", tcp->ci95)
                    .add("tfrc_mean", tfrc->mean)
                    .add("tfrc_ci95", tfrc->ci95)
                    .add("utilization_mean", util->mean)
                    .add("utilization_ci95", util->ci95));
    if (period >= 1.0 && period <= 8.0 && tcp->mean <= tfrc->mean) {
      tcp_wins_midrange = false;
    }
    if (tfrc->mean > 1.15 * tcp->mean) {
      tfrc_never_wins_big = false;
    }
    if (period == 0.1) util_short = util->mean;
    if (period == 0.2) util_4rtt = util->mean;
  }
  bench::note("(throughput normalized by each flow's fair share of the "
              "average available bandwidth; mean ± 95%% CI over %d trials)",
              kTrials);

  bench::verdict(tcp_wins_midrange && tfrc_never_wins_big,
                 "TCP receives more than TFRC at mid-range periods and "
                 "TFRC never significantly beats TCP");
  bench::note("utilization at period 0.1s=%.2f vs 0.2s (4 RTTs)=%.2f",
              util_short, util_4rtt);
  return 0;
}
