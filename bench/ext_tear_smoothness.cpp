// Extension: TEAR (TCP Emulation At Receivers) — classified by the
// paper (§2, Figure 1) as TCP-compatible and slowly responsive. We
// check its smoothness/throughput position between TCP and TFRC under
// the mild bursty pattern.
#include "bench_util.hpp"
#include "scenario/smoothness_experiment.hpp"

using namespace slowcc;

namespace {

scenario::SmoothnessOutcome run(const scenario::FlowSpec& spec) {
  scenario::SmoothnessConfig cfg;
  cfg.spec = spec;
  cfg.pattern = scenario::LossPattern::kMildlyBursty;
  return run_smoothness(cfg);
}

}  // namespace

int main() {
  bench::header("Extension (paper §2)",
                "TEAR smoothness under the mild bursty pattern");
  bench::paper_note(
      "TEAR keeps TCP's window dynamics but averages the window at the "
      "receiver, so its sending rate should be smoother than TCP's while "
      "carrying comparable throughput");

  const auto tear = run(scenario::FlowSpec::tear());
  const auto tcp = run(scenario::FlowSpec::tcp(2));
  const auto tfrc = run(scenario::FlowSpec::tfrc(6));

  bench::row("%-8s %12s %10s %14s", "flow", "smoothness", "CoV",
             "mean (Mb/s)");
  bench::row("%-8s %12.2f %10.2f %14.2f", "TEAR", tear.smoothness, tear.cov,
             tear.mean_rate_bps / 1e6);
  bench::row("%-8s %12.2f %10.2f %14.2f", "TCP(1/2)", tcp.smoothness,
             tcp.cov, tcp.mean_rate_bps / 1e6);
  bench::row("%-8s %12.2f %10.2f %14.2f", "TFRC(6)", tfrc.smoothness,
             tfrc.cov, tfrc.mean_rate_bps / 1e6);

  bench::verdict(tear.cov < tcp.cov &&
                     tear.mean_rate_bps > 0.4 * tcp.mean_rate_bps,
                 "TEAR's receiver-side averaging yields a smoother rate "
                 "than TCP at usable throughput");
  return 0;
}
