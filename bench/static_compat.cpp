// Static TCP-compatibility baseline (the premise of the paper's §2):
// goodput under steady Bernoulli loss vs the Padhye prediction.
#include "bench_util.hpp"
#include "scenario/static_compat_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Static compatibility",
                "goodput under steady loss vs the TCP response function");
  bench::paper_note(
      "under a fixed loss rate every TCP-compatible mechanism obtains "
      "roughly the throughput of the TCP response function — the static "
      "condition all the dynamic experiments start from");

  const double losses[] = {0.005, 0.01, 0.02, 0.05};
  bench::row("%-12s %8s %12s %12s %8s", "mechanism", "p", "goodput",
             "predicted", "ratio");
  bool all_close = true;
  for (const auto& spec :
       {scenario::FlowSpec::tcp(2), scenario::FlowSpec::tcp(8),
        scenario::FlowSpec::sqrt(2), scenario::FlowSpec::tfrc(6),
        scenario::FlowSpec::rap(2)}) {
    for (double p : losses) {
      scenario::StaticCompatConfig cfg;
      cfg.spec = spec;
      cfg.loss_rate = p;
      const auto out = run_static_compat(cfg);
      bench::row("%-12s %8.3f %9.2f Mb/s %9.2f Mb/s %8.2f",
                 spec.label().c_str(), p, out.goodput_bps / 1e6,
                 out.padhye_prediction_bps / 1e6, out.ratio_to_prediction);
      if (out.ratio_to_prediction < 0.33 || out.ratio_to_prediction > 3.5) {
        all_close = false;
      }
    }
  }

  bench::verdict(all_close,
                 "every mechanism stays within a small factor of the TCP "
                 "response function under static loss");
  return 0;
}
