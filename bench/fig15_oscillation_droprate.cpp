// Figure 15: packet drop rate for the Figure 14 simulations.
#include "bench_util.hpp"
#include "scenario/oscillation_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 15", "drop rate vs ON/OFF length, 3:1 oscillation");
  bench::paper_note(
      "drop rates peak where utilization dips (periods of a few RTTs): "
      "each CBR burst slams a queue the flows had just refilled");

  bench::row("%-12s %10s %10s %10s", "on/off (s)", "TCP(1/8)", "TCP",
             "TFRC(6)");
  double peak = 0.0, at_3s = 1.0;
  for (double len : {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2}) {
    double vals[3];
    int i = 0;
    for (const auto& spec :
         {scenario::FlowSpec::tcp(8), scenario::FlowSpec::tcp(2),
          scenario::FlowSpec::tfrc(6)}) {
      scenario::OscillationConfig cfg;
      cfg.spec = spec;
      cfg.on_off_length = sim::Time::seconds(len);
      const auto out = run_oscillation(cfg);
      vals[i++] = out.drop_rate;
    }
    bench::row("%-12.2f %10.3f %10.3f %10.3f", len, vals[0], vals[1],
               vals[2]);
    peak = std::max({peak, vals[0], vals[1], vals[2]});
    if (len == 3.2) at_3s = std::max({vals[0], vals[1], vals[2]});
  }

  bench::verdict(peak > at_3s,
                 "drop rate is worst at short-to-mid oscillation periods "
                 "and relaxes for slow oscillations");
  return 0;
}
