// Figure 9: long-term fairness of TCP vs SQRT(1/2) under 3:1
// oscillating bandwidth.
#include "bench_util.hpp"
#include "scenario/fairness_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 9",
                "TCP vs SQRT(1/2) throughput under 3:1 oscillating bandwidth");
  bench::paper_note(
      "like the other SlowCCs, SQRT is slower at increasing into freed "
      "bandwidth, so TCP is at least competitive at every period and "
      "SQRT never wins in the long term");

  bench::row("%-10s %10s %12s %12s", "period(s)", "TCP mean",
             "SQRT(1/2) mean", "utilization");
  bool sqrt_never_wins_big = true;
  for (double period : {0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    scenario::FairnessConfig cfg;
    cfg.group_a = scenario::FlowSpec::tcp(2);
    cfg.group_b = scenario::FlowSpec::sqrt(2);
    cfg.cbr_period = sim::Time::seconds(period);
    cfg.measure = sim::Time::seconds(std::max(120.0, 15.0 * period));
    const auto out = run_fairness(cfg);
    bench::row("%-10.2f %10.2f %12.2f %12.2f", period, out.group_a_mean,
               out.group_b_mean, out.utilization);
    if (out.group_b_mean > 1.2 * out.group_a_mean) {
      sqrt_never_wins_big = false;
    }
  }

  bench::verdict(sqrt_never_wins_big,
                 "SQRT never takes significantly more than TCP under "
                 "oscillating bandwidth");
  return 0;
}
