// Figure 5: stabilization cost (time x mean loss) vs γ, log scale in
// the paper. Cost 1 = one full RTT of packets lost.
#include "bench_util.hpp"
#include "scenario/stabilization_experiment.hpp"

using namespace slowcc;

namespace {

double stab_cost(const scenario::FlowSpec& spec) {
  scenario::StabilizationConfig cfg;
  cfg.spec = spec;
  cfg.cbr_stop = sim::Time::seconds(60);
  cfg.cbr_restart = sim::Time::seconds(75);
  cfg.end = sim::Time::seconds(150);
  return run_stabilization(cfg).stabilization.stabilization_cost;
}

}  // namespace

int main() {
  bench::header("Figure 5", "stabilization cost vs slowness parameter γ");
  bench::paper_note(
      "for large γ the rate-based mechanisms cost up to two orders of "
      "magnitude more than the most slowly-responsive TCP(1/γ) or "
      "SQRT(1/γ); with the proposed deployment range (γ <= 8) every "
      "mechanism's cost stays small; self-clocking repairs TFRC(256)");

  const double gammas[] = {2, 8, 32, 128, 256};
  bench::row("%-6s %10s %10s %10s %10s %12s", "γ", "TCP(1/γ)", "RAP(1/γ)",
             "SQRT(1/γ)", "TFRC(γ)", "TFRC(γ)+SC");
  double tcp256 = 0, tfrc256 = 0, rap256 = 0, tfrc8 = 0, tcp8 = 0;
  for (double g : gammas) {
    const double tcp = stab_cost(scenario::FlowSpec::tcp(g));
    const double rap = stab_cost(scenario::FlowSpec::rap(g));
    const double sqrt_v = stab_cost(scenario::FlowSpec::sqrt(g));
    const double tfrc = stab_cost(scenario::FlowSpec::tfrc(static_cast<int>(g)));
    const double tfrc_sc =
        stab_cost(scenario::FlowSpec::tfrc(static_cast<int>(g), true));
    bench::row("%-6.0f %10.2f %10.2f %10.2f %10.2f %12.2f", g, tcp, rap,
               sqrt_v, tfrc, tfrc_sc);
    if (g == 256) {
      tcp256 = tcp;
      tfrc256 = tfrc;
      rap256 = rap;
    }
    if (g == 8) {
      tfrc8 = tfrc;
      tcp8 = tcp;
    }
  }

  bench::verdict(
      rap256 > 10.0 * tcp256 && tfrc256 > 2.0 * tcp256 && tfrc8 < 5.0 &&
          tcp8 < 5.0,
      "rate-based algorithms at γ=256 cost 1-2 orders of magnitude more "
      "than TCP(1/256); proposed-deployment parameters stay cheap");
  return 0;
}
