#pragma once

// Shared output helpers for the figure-reproduction benches. Each bench
// prints (a) what the paper reports for this figure, (b) the measured
// series in aligned columns, and (c) a short verdict on whether the
// paper's qualitative shape held.

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/serialize.hpp"

namespace slowcc::bench {

inline void header(const char* figure, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("================================================================\n");
}

inline void paper_note(const char* text) {
  std::printf("paper: %s\n", text);
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void verdict(bool held, const std::string& what) {
  std::printf("[%s] %s\n\n", held ? "SHAPE-OK" : "SHAPE-DEVIATION",
              what.c_str());
}

/// Start a machine-readable JSON row for this bench. Escaping and
/// number formatting are shared with the sweep ResultSink (exp/
/// serialize), so bench output and sweep output are byte-compatible.
/// Usage: bench::emit(bench::json_row("fig03").add("mechanism", "TCP")
///                        .add("drop_rate", 0.12));
inline exp::JsonObjectBuilder json_row(const std::string& bench_name) {
  exp::JsonObjectBuilder o;
  o.add("bench", bench_name);
  return o;
}

inline void emit(const exp::JsonObjectBuilder& o) {
  std::printf("%s\n", o.str().c_str());
}

/// Render "mean ± ci95" for a multi-trial aggregate, e.g. "0.124 ± 0.006".
/// Returns just the mean when fewer than two trials contributed.
inline std::string mean_ci(const exp::MetricStats& m, const char* fmt = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, m.mean);
  std::string out = buf;
  if (m.n > 1) {
    std::snprintf(buf, sizeof(buf), fmt, m.ci95);
    out += " ± ";
    out += buf;
  }
  return out;
}

}  // namespace slowcc::bench
