#pragma once

// Shared output helpers for the figure-reproduction benches. Each bench
// prints (a) what the paper reports for this figure, (b) the measured
// series in aligned columns, and (c) a short verdict on whether the
// paper's qualitative shape held.

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace slowcc::bench {

inline void header(const char* figure, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("================================================================\n");
}

inline void paper_note(const char* text) {
  std::printf("paper: %s\n", text);
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void verdict(bool held, const std::string& what) {
  std::printf("[%s] %s\n\n", held ? "SHAPE-OK" : "SHAPE-DEVIATION",
              what.c_str());
}

}  // namespace slowcc::bench
