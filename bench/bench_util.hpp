#pragma once

// Shared output helpers for the figure-reproduction benches. Each bench
// prints (a) what the paper reports for this figure, (b) the measured
// series in aligned columns, and (c) a short verdict on whether the
// paper's qualitative shape held.

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/serialize.hpp"
#include "exp/sweep_spec.hpp"

namespace slowcc::bench {

inline void header(const char* figure, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("================================================================\n");
}

inline void paper_note(const char* text) {
  std::printf("paper: %s\n", text);
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void verdict(bool held, const std::string& what) {
  std::printf("[%s] %s\n\n", held ? "SHAPE-OK" : "SHAPE-DEVIATION",
              what.c_str());
}

/// Start a machine-readable JSON row for this bench. Escaping and
/// number formatting are shared with the sweep ResultSink (exp/
/// serialize), so bench output and sweep output are byte-compatible.
/// Usage: bench::emit(bench::json_row("fig03").add("mechanism", "TCP")
///                        .add("drop_rate", 0.12));
inline exp::JsonObjectBuilder json_row(const std::string& bench_name) {
  exp::JsonObjectBuilder o;
  o.add("bench", bench_name);
  return o;
}

inline void emit(const exp::JsonObjectBuilder& o) {
  std::printf("%s\n", o.str().c_str());
}

/// Render "mean ± ci95" for a multi-trial aggregate, e.g. "0.124 ± 0.006".
/// Returns just the mean when fewer than two trials contributed.
inline std::string mean_ci(const exp::MetricStats& m, const char* fmt = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, m.mean);
  std::string out = buf;
  if (m.n > 1) {
    std::snprintf(buf, sizeof(buf), fmt, m.ci95);
    out += " ± ";
    out += buf;
  }
  return out;
}

/// Run a figure's trials on every core under a hardened policy: each
/// trial gets a generous wall-clock backstop, so one hung scenario
/// turns into a reported failure row instead of a bench that never
/// finishes. Quarantined failures are summarized on stderr (the
/// figure's tables then show the surviving trials).
inline std::vector<exp::Row> run_hardened(
    const std::vector<exp::TrialDesc>& trials) {
  exp::ParallelRunner runner(exp::ParallelRunner::default_jobs());
  exp::RunnerPolicy policy;
  policy.max_trial_wall_seconds = 600.0;
  runner.set_policy(policy);
  std::vector<exp::Row> rows = runner.run(trials);
  std::size_t failed = 0;
  for (const exp::Row& r : rows) {
    if (!r.error.empty()) ++failed;
  }
  if (failed > 0) {
    std::fprintf(stderr, "!! %zu/%zu trial(s) quarantined as failed:\n",
                 failed, rows.size());
    for (const exp::Row& r : rows) {
      if (!r.error.empty()) {
        std::fprintf(stderr, "!!   %s trial %d: %s\n", r.cell.c_str(),
                     r.trial_index, r.error.c_str());
      }
    }
  }
  return rows;
}

}  // namespace slowcc::bench
