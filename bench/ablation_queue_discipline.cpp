// Ablation: RED vs DropTail at the bottleneck for the stabilization
// scenario. The paper notes its self-clocking results "were done with
// droptail queue management as well and a similar benefit was seen".
#include "bench_util.hpp"
#include "scenario/stabilization_experiment.hpp"

using namespace slowcc;

namespace {

scenario::StabilizationOutcome run(const scenario::FlowSpec& spec,
                                   bool red) {
  scenario::StabilizationConfig cfg;
  cfg.spec = spec;
  cfg.net.red = red;
  cfg.cbr_stop = sim::Time::seconds(60);
  cfg.cbr_restart = sim::Time::seconds(75);
  cfg.end = sim::Time::seconds(150);
  return run_stabilization(cfg);
}

}  // namespace

int main() {
  bench::header("Ablation", "RED vs DropTail for the stabilization scenario");
  bench::paper_note(
      "the self-clocking benefit is not a RED artifact: the ordering "
      "(TCP cheap, rate-based TFRC(256) expensive, self-clocking helps) "
      "holds under DropTail too");

  bench::row("%-22s %10s %14s %14s", "mechanism", "queue", "stab (RTTs)",
             "stab cost");
  double tfrc_dt = 0, tcp_dt = 0, tfrc_sc_dt = 0;
  for (bool red : {true, false}) {
    for (const auto& [label, spec] :
         std::initializer_list<std::pair<const char*, scenario::FlowSpec>>{
             {"TCP(1/2)", scenario::FlowSpec::tcp(2)},
             {"TFRC(256)", scenario::FlowSpec::tfrc(256)},
             {"TFRC(256)+SC", scenario::FlowSpec::tfrc(256, true)}}) {
      const auto out = run(spec, red);
      bench::row("%-22s %10s %14.0f %14.2f", label, red ? "RED" : "DropTail",
                 out.stabilization.stabilization_time_rtts,
                 out.stabilization.stabilization_cost);
      if (!red) {
        if (std::string(label) == "TCP(1/2)")
          tcp_dt = out.stabilization.stabilization_cost;
        if (std::string(label) == "TFRC(256)")
          tfrc_dt = out.stabilization.stabilization_cost;
        if (std::string(label) == "TFRC(256)+SC")
          tfrc_sc_dt = out.stabilization.stabilization_cost;
      }
    }
  }

  bench::verdict(tfrc_dt > tcp_dt && tfrc_sc_dt < tfrc_dt * 1.2,
                 "under DropTail, TFRC(256) still costs more than TCP and "
                 "self-clocking still does not hurt");
  return 0;
}
