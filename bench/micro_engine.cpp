// Engine micro-benchmarks (google-benchmark): raw event throughput,
// queue disciplines, link forwarding, and a full dumbbell in flight.
#include <benchmark/benchmark.h>

#include "net/drop_tail_queue.hpp"
#include "net/packet_pool.hpp"
#include "net/red_queue.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "traffic/cbr_source.hpp"

using namespace slowcc;

// The two event-queue benchmarks run once per engine (name suffix
// /heap, /wheel); tools/bench_report pairs the variants up and reports
// the wheel:heap speedup in BENCH_engine.json.
static void BM_EventQueueScheduleRun(benchmark::State& state,
                                     sim::EngineKind kind) {
  for (auto _ : state) {
    sim::Simulator sim{kind};
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(sim::Time::micros(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK_CAPTURE(BM_EventQueueScheduleRun, heap, sim::EngineKind::kHeap);
BENCHMARK_CAPTURE(BM_EventQueueScheduleRun, wheel, sim::EngineKind::kWheel);

static void BM_EventQueueCancelHeavy(benchmark::State& state,
                                     sim::EngineKind kind) {
  for (auto _ : state) {
    sim::EventQueue q{kind};
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(q.schedule(sim::Time::micros(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) (void)q.pop(nullptr);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK_CAPTURE(BM_EventQueueCancelHeavy, heap, sim::EngineKind::kHeap);
BENCHMARK_CAPTURE(BM_EventQueueCancelHeavy, wheel, sim::EngineKind::kWheel);

static void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q(64);
  net::Packet p;
  for (auto _ : state) {
    net::Packet copy = p;
    benchmark::DoNotOptimize(q.enqueue(std::move(copy)));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailEnqueueDequeue);

static void BM_RedEnqueueDequeue(benchmark::State& state) {
  sim::Simulator sim;
  net::RedConfig cfg;
  cfg.limit_packets = 64;
  cfg.min_thresh = 5;
  cfg.max_thresh = 15;
  net::RedQueue q(sim, cfg);
  net::Packet p;
  for (auto _ : state) {
    net::Packet copy = p;
    benchmark::DoNotOptimize(q.enqueue(std::move(copy)));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedEnqueueDequeue);

static void BM_DumbbellTcpSecond(benchmark::State& state) {
  // Cost of simulating one second of a loaded dumbbell (10 TCP flows at
  // 10 Mb/s): the workhorse configuration of every experiment.
  for (auto _ : state) {
    sim::Simulator sim;
    scenario::DumbbellConfig cfg;
    cfg.reverse_tcp_flows = 0;
    scenario::Dumbbell net(sim, cfg);
    for (int i = 0; i < 10; ++i) net.add_flow(scenario::FlowSpec::tcp());
    net.start_flows();
    net.finalize();
    sim.run_until(sim::Time::seconds(1.0));
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_DumbbellTcpSecond)->Unit(benchmark::kMillisecond);

static void BM_DumbbellTfrcSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    scenario::DumbbellConfig cfg;
    cfg.reverse_tcp_flows = 0;
    scenario::Dumbbell net(sim, cfg);
    for (int i = 0; i < 10; ++i) net.add_flow(scenario::FlowSpec::tfrc(6));
    net.start_flows();
    net.finalize();
    sim.run_until(sim::Time::seconds(1.0));
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_DumbbellTfrcSecond)->Unit(benchmark::kMillisecond);

// Packet hot-path macro-bench (ROADMAP item 3): the paper's dumbbell
// with flash-crowd bursts keeping the bottleneck queue full, so
// back-to-back departures dominate the event stream — exactly the
// regime where the pooled path's batched drain chain and pool handles
// pay off against the scalar path's one-event-per-departure +
// by-value std::function captures. Every executed event is a link
// transmit or delivery (bursts are injected between run_until slices,
// not via per-packet source timers, so source-model overhead does not
// dilute the packet path being measured). Runs once per packet path
// (/scalar, /pooled); both execute the identical logical event stream
// (the differential tests pin that), so the ns-per-op ratio is the
// end-to-end events/s speedup that tools/bench_report reports as
// pooled_speedup.
static void BM_SaturatedDumbbell(benchmark::State& state,
                                 net::PacketPath path) {
  std::int64_t events = 0;
  for (auto _ : state) {
    net::set_thread_packet_path(path);
    {
      sim::Simulator sim;
      scenario::DumbbellConfig cfg;
      cfg.reverse_tcp_flows = 0;
      cfg.red = false;  // DropTail: bursts fit the buffer, no early drops
      scenario::Dumbbell bed(sim, cfg);
      // Unstarted CBR pair: just a routed source/sink host on each side.
      const scenario::Dumbbell::CbrPair endpoints = bed.add_cbr_pair(1e6);
      bed.finalize();
      const net::NodeId dst = endpoints.sink->local_node().id();
      const net::PortId port = endpoints.sink->local_port();
      // 64 packets x 1000 B at 10 Mb/s = 51.2 ms per burst drain.
      std::int64_t seq = 0;
      for (int burst = 0; burst < 48; ++burst) {
        for (int i = 0; i < 64; ++i) {
          net::Packet p;
          p.src_node = bed.left_router().id();
          p.dst_node = dst;
          p.dst_port = port;
          p.seq = seq++;
          p.size_bytes = 1000;
          bed.bottleneck().send(std::move(p));
        }
        sim.run_until(sim::Time::millis(52) * (burst + 1));
      }
      sim.run();
      events += static_cast<std::int64_t>(sim.events_executed());
      benchmark::DoNotOptimize(sim.events_executed());
    }
    net::clear_thread_packet_path();
  }
  state.SetItemsProcessed(events);
}
BENCHMARK_CAPTURE(BM_SaturatedDumbbell, scalar, net::PacketPath::kScalar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SaturatedDumbbell, pooled, net::PacketPath::kPooled)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
