// Engine micro-benchmarks (google-benchmark): raw event throughput,
// queue disciplines, link forwarding, and a full dumbbell in flight.
#include <benchmark/benchmark.h>

#include "net/drop_tail_queue.hpp"
#include "net/red_queue.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

using namespace slowcc;

// The two event-queue benchmarks run once per engine (name suffix
// /heap, /wheel); tools/bench_report pairs the variants up and reports
// the wheel:heap speedup in BENCH_engine.json.
static void BM_EventQueueScheduleRun(benchmark::State& state,
                                     sim::EngineKind kind) {
  for (auto _ : state) {
    sim::Simulator sim{kind};
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(sim::Time::micros(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK_CAPTURE(BM_EventQueueScheduleRun, heap, sim::EngineKind::kHeap);
BENCHMARK_CAPTURE(BM_EventQueueScheduleRun, wheel, sim::EngineKind::kWheel);

static void BM_EventQueueCancelHeavy(benchmark::State& state,
                                     sim::EngineKind kind) {
  for (auto _ : state) {
    sim::EventQueue q{kind};
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(q.schedule(sim::Time::micros(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) (void)q.pop(nullptr);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK_CAPTURE(BM_EventQueueCancelHeavy, heap, sim::EngineKind::kHeap);
BENCHMARK_CAPTURE(BM_EventQueueCancelHeavy, wheel, sim::EngineKind::kWheel);

static void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q(64);
  net::Packet p;
  for (auto _ : state) {
    net::Packet copy = p;
    benchmark::DoNotOptimize(q.enqueue(std::move(copy)));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailEnqueueDequeue);

static void BM_RedEnqueueDequeue(benchmark::State& state) {
  sim::Simulator sim;
  net::RedConfig cfg;
  cfg.limit_packets = 64;
  cfg.min_thresh = 5;
  cfg.max_thresh = 15;
  net::RedQueue q(sim, cfg);
  net::Packet p;
  for (auto _ : state) {
    net::Packet copy = p;
    benchmark::DoNotOptimize(q.enqueue(std::move(copy)));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedEnqueueDequeue);

static void BM_DumbbellTcpSecond(benchmark::State& state) {
  // Cost of simulating one second of a loaded dumbbell (10 TCP flows at
  // 10 Mb/s): the workhorse configuration of every experiment.
  for (auto _ : state) {
    sim::Simulator sim;
    scenario::DumbbellConfig cfg;
    cfg.reverse_tcp_flows = 0;
    scenario::Dumbbell net(sim, cfg);
    for (int i = 0; i < 10; ++i) net.add_flow(scenario::FlowSpec::tcp());
    net.start_flows();
    net.finalize();
    sim.run_until(sim::Time::seconds(1.0));
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_DumbbellTcpSecond)->Unit(benchmark::kMillisecond);

static void BM_DumbbellTfrcSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    scenario::DumbbellConfig cfg;
    cfg.reverse_tcp_flows = 0;
    scenario::Dumbbell net(sim, cfg);
    for (int i = 0; i < 10; ++i) net.add_flow(scenario::FlowSpec::tfrc(6));
    net.start_flows();
    net.finalize();
    sim.run_until(sim::Time::seconds(1.0));
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_DumbbellTfrcSecond)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
