// Figure 17: TFRC vs TCP(1/8) rate traces under the mildly bursty
// scripted loss pattern (3 losses each after 50 packets, then 3 each
// after 400, repeating) — TFRC's best case.
#include "bench_util.hpp"
#include "scenario/smoothness_experiment.hpp"

using namespace slowcc;

namespace {

scenario::SmoothnessOutcome run(const scenario::FlowSpec& spec) {
  scenario::SmoothnessConfig cfg;
  cfg.spec = spec;
  cfg.pattern = scenario::LossPattern::kMildlyBursty;
  return run_smoothness(cfg);
}

void print_trace(const char* label, const scenario::SmoothnessOutcome& o) {
  bench::note("-- %s: smoothness=%.2f CoV=%.2f mean=%.2f Mb/s drops=%lld --",
              label, o.smoothness, o.cov, o.mean_rate_bps / 1e6,
              static_cast<long long>(o.scripted_drops));
  std::printf("   0.2s-bins (Mb/s):");
  for (std::size_t i = 0; i < o.fine_rate_bps.size() && i < 60; i += 3) {
    std::printf(" %.1f", o.fine_rate_bps[i] / 1e6);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::header("Figure 17",
                "TFRC vs TCP(1/8) with a mildly bursty loss pattern");
  bench::paper_note(
      "the pattern fits inside TFRC's averaging window, so TFRC holds a "
      "nearly constant rate and is considerably smoother than TCP(1/8), "
      "with slightly higher throughput");

  const auto tfrc = run(scenario::FlowSpec::tfrc(6));
  const auto tcp8 = run(scenario::FlowSpec::tcp(8));
  print_trace("TFRC(6)", tfrc);
  print_trace("TCP(1/8)", tcp8);

  bench::verdict(tfrc.cov < tcp8.cov &&
                     tfrc.mean_rate_bps > 0.7 * tcp8.mean_rate_bps,
                 "TFRC is smoother than TCP(1/8) under the mild pattern "
                 "without giving up meaningful throughput");
  return 0;
}
