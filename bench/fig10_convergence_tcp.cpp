// Figure 10: time for two TCP(b) flows to reach a 0.1-fair allocation,
// the second flow starting from ~1 packet per RTT against an
// established flow.
#include "bench_util.hpp"
#include "scenario/convergence_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 10",
                "0.1-fair convergence time for two TCP(b) flows vs b");
  bench::paper_note(
      "convergence is quick for b >= ~0.2 and grows steeply (exponentially "
      "in the analysis) as b shrinks; very slow TCP(1/b) variants take "
      "hundreds of seconds");

  bench::row("%-8s %-10s %14s %14s", "γ (1/b)", "b", "time (s)",
             "final shares");
  double t2 = 0, t64 = 0;
  for (double gamma : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    scenario::ConvergenceConfig cfg;
    cfg.spec = scenario::FlowSpec::tcp(gamma);
    cfg.first_flow_head_start = sim::Time::seconds(20.0);
    cfg.horizon =
        sim::Time::seconds(gamma >= 32 ? 900.0 : 300.0);
    const auto out = run_convergence(cfg);
    char shares[48];
    std::snprintf(shares, sizeof(shares), "%.2f/%.2f", out.flow1_final_share,
                  out.flow2_final_share);
    if (out.result.converged) {
      bench::row("%-8.0f %-10.4f %14.1f %14s", gamma, 1.0 / gamma,
                 out.result.convergence_time_s, shares);
    } else {
      bench::row("%-8.0f %-10.4f %14s %14s", gamma, 1.0 / gamma,
                 "> horizon", shares);
    }
    if (gamma == 2) t2 = out.result.convergence_time_s;
    if (gamma == 64) {
      t64 = out.result.converged ? out.result.convergence_time_s : 1e9;
    }
  }

  bench::verdict(t2 < 60.0 && t64 > 3.0 * t2,
                 "standard TCP converges in seconds; TCP(1/64) takes far "
                 "longer (growing steeply with 1/b)");
  return 0;
}
