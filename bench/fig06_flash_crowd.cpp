// Figure 6: aggregate throughput of long-running SlowCC background
// traffic versus a flash crowd of short TCP transfers arriving at
// t = 25 s (200 flows/sec for 5 s, 10-packet transfers).
#include "bench_util.hpp"
#include "scenario/flash_crowd_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 6",
                "flash crowd of short TCP flows vs long-lived SlowCC");
  bench::paper_note(
      "the crowd grabs bandwidth quickly regardless of the background "
      "(short flows are in slow-start); self-clocking helps TFRC(256) "
      "yield promptly and recover cleanly afterwards");

  struct Case {
    const char* label;
    scenario::FlowSpec spec;
  };
  const Case cases[] = {
      {"TCP(1/2)", scenario::FlowSpec::tcp(2)},
      {"TFRC(256) no self-clock", scenario::FlowSpec::tfrc(256)},
      {"TFRC(256) self-clock", scenario::FlowSpec::tfrc(256, true)},
  };

  std::vector<scenario::FlashCrowdOutcome> outs;
  for (const auto& c : cases) {
    scenario::FlashCrowdExperimentConfig cfg;
    cfg.background = c.spec;
    outs.push_back(run_flash_crowd(cfg));
  }

  for (std::size_t i = 0; i < 3; ++i) {
    const auto& o = outs[i];
    bench::note("-- background: %s --", cases[i].label);
    bench::row("  crowd flows: %zu started, %zu completed, mean fct %.2f s",
               o.crowd_flows_started, o.crowd_flows_completed,
               o.crowd_mean_completion_s);
    bench::row("  background during crowd: %.2f Mb/s; after crowd: %.2f Mb/s",
               o.background_during_crowd_bps / 1e6,
               o.background_after_crowd_bps / 1e6);
    bench::row("  %-8s %-14s %-14s", "t (s)", "background", "crowd (Mb/s)");
    for (std::size_t bin = 40; bin < o.background_bps.size() && bin < 90;
         bin += 4) {
      bench::row("  %-8.1f %-14.2f %-14.2f", o.times_s[bin],
                 o.background_bps[bin] / 1e6, o.crowd_bps[bin] / 1e6);
    }
  }

  // Shape checks: the crowd completes most flows under every background,
  // and backgrounds recover after the crowd subsides.
  bool crowd_served = true;
  bool recovery = true;
  for (const auto& o : outs) {
    crowd_served = crowd_served &&
                   o.crowd_flows_completed > 0.8 * o.crowd_flows_started;
    recovery = recovery && o.background_after_crowd_bps >
                               0.5 * o.background_during_crowd_bps;
  }
  bench::verdict(crowd_served && recovery,
                 "the flash crowd gets served under every background type "
                 "and the background traffic recovers afterwards");
  return 0;
}
