// Ablation: the conservative option's constant C (paper footnote: the
// authors used C = 1.1; ns-2 shipped 1.5). How does C trade off
// stabilization cost against steady-state throughput?
#include "bench_util.hpp"
#include "scenario/stabilization_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Ablation",
                "conservative option constant C for TFRC(256)+self-clock");
  bench::paper_note(
      "smaller C enforces packet conservation harder: cheaper "
      "stabilization after a bandwidth drop, slower growth in good times "
      "(the paper picked C = 1.1; the ns-2 default was 1.5)");

  bench::row("%-8s %14s %14s %12s", "C", "stab (RTTs)", "stab cost",
             "steady loss");
  double cost_low = 0, cost_high = 0;
  for (double c_val : {1.02, 1.1, 1.3, 1.5, 2.0}) {
    scenario::StabilizationConfig cfg;
    auto spec = scenario::FlowSpec::tfrc(256, true);
    spec.tfrc_conservative_c = c_val;
    cfg.spec = spec;
    cfg.cbr_stop = sim::Time::seconds(60);
    cfg.cbr_restart = sim::Time::seconds(75);
    cfg.end = sim::Time::seconds(150);
    const auto out = run_stabilization(cfg);
    bench::row("%-8.2f %14.0f %14.2f %12.3f", c_val,
               out.stabilization.stabilization_time_rtts,
               out.stabilization.stabilization_cost, out.steady_loss_rate);
    if (c_val == 1.02) cost_low = out.stabilization.stabilization_cost;
    if (c_val == 2.0) cost_high = out.stabilization.stabilization_cost;
  }

  bench::verdict(cost_low <= cost_high * 1.25,
                 "tighter C does not worsen (and generally improves) the "
                 "stabilization cost");
  return 0;
}
