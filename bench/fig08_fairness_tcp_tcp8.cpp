// Figure 8: long-term fairness of TCP vs TCP(1/8) under 3:1 oscillating
// bandwidth.
#include "bench_util.hpp"
#include "scenario/fairness_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 8",
                "TCP vs TCP(1/8) throughput under 3:1 oscillating bandwidth");
  bench::paper_note(
      "TCP(1/8) is reasonably prompt at decreasing but slower at claiming "
      "new bandwidth, so standard TCP gets at least its share at mid-range "
      "periods; the effect is milder than against TFRC");

  bench::row("%-10s %10s %12s %12s", "period(s)", "TCP mean", "TCP(1/8) mean",
             "utilization");
  bool no_big_win_for_slow = true;
  for (double period : {0.1, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    scenario::FairnessConfig cfg;
    cfg.group_a = scenario::FlowSpec::tcp(2);
    cfg.group_b = scenario::FlowSpec::tcp(8);
    cfg.cbr_period = sim::Time::seconds(period);
    cfg.measure = sim::Time::seconds(std::max(120.0, 15.0 * period));
    const auto out = run_fairness(cfg);
    bench::row("%-10.2f %10.2f %12.2f %12.2f", period, out.group_a_mean,
               out.group_b_mean, out.utilization);
    if (period >= 1.0 && period <= 8.0 &&
        out.group_b_mean > 1.2 * out.group_a_mean) {
      no_big_win_for_slow = false;
    }
  }

  bench::verdict(no_big_win_for_slow,
                 "TCP(1/8) does not take bandwidth away from standard TCP "
                 "under dynamic conditions");
  return 0;
}
