// Figure 3: drop-rate time series when a CBR source restarts after an
// idle period, for very slowly responsive SlowCC variants. The time
// series is a single seed (it is the figure); the summary statistics
// underneath come from a multi-trial sweep so the verdict rests on a
// mean ± 95% CI rather than one draw.
#include "bench_util.hpp"
#include "exp/aggregator.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/sweep_spec.hpp"
#include "scenario/stabilization_experiment.hpp"

using namespace slowcc;

namespace {
constexpr int kTrials = 5;
}

int main() {
  bench::header("Figure 3",
                "drop rate when the CBR source restarts after idling");
  bench::paper_note(
      "transient spike of ~40% drops at the restart; TCP returns to the "
      "steady rate within a couple of RTTs, TFRC(256) without self-clocking "
      "keeps the loss rate elevated for tens of seconds");

  struct Case {
    const char* label;
    const char* token;  // exp-registry algorithm token
    scenario::FlowSpec spec;
  };
  const Case cases[] = {
      {"TCP(1/2)", "tcp:2", scenario::FlowSpec::tcp(2)},
      {"TFRC(256)", "tfrc:256", scenario::FlowSpec::tfrc(256)},
      {"TFRC(256)+self-clock", "tfrc:256:c", scenario::FlowSpec::tfrc(256, true)},
  };

  // Compressed timeline (same structure as the paper's 0-150-180 s):
  // CBR on 0-60 s, idle 60-75 s, restart at 75 s.
  std::vector<std::vector<double>> traces;
  for (const auto& c : cases) {
    scenario::StabilizationConfig cfg;
    cfg.spec = c.spec;
    cfg.cbr_stop = sim::Time::seconds(60);
    cfg.cbr_restart = sim::Time::seconds(75);
    cfg.end = sim::Time::seconds(140);
    traces.push_back(run_stabilization(cfg).loss_rate_series);
  }

  bench::row("%-8s %-12s %-12s %-22s", "t (s)", cases[0].label,
             cases[1].label, cases[2].label);
  // Print every second from t=70 (just before restart) to the end.
  for (double t = 70.0; t <= 138.0; t += 2.0) {
    const std::size_t idx = static_cast<std::size_t>(t / 0.05);
    auto at = [&](std::size_t ci) {
      return idx < traces[ci].size() ? traces[ci][idx] : 0.0;
    };
    bench::row("%-8.0f %-12.3f %-12.3f %-22.3f", t, at(0), at(1), at(2));
  }
  bench::note("(time series above: single trial, seed 1)");

  // Multi-trial statistics over the same scenario, one grid cell per
  // mechanism, kTrials independent seeds each.
  exp::SweepSpec sweep;
  sweep.experiment = "stabilization";
  sweep.algorithms = {cases[0].token, cases[1].token, cases[2].token};
  sweep.fixed["cbr_stop"] = 60;
  sweep.fixed["cbr_restart"] = 75;
  sweep.fixed["end"] = 140;
  sweep.trials = kTrials;
  const std::vector<exp::CellStats> cells =
      exp::aggregate(bench::run_hardened(sweep.expand()));

  bench::row("%-22s %-20s %-20s", "mechanism", "steady loss",
             "peak after restart");
  std::vector<double> peaks;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const exp::MetricStats* steady = cells[i].metric("steady_loss_rate");
    const exp::MetricStats* peak =
        cells[i].metric("peak_loss_rate_after_restart");
    bench::row("%-22s %-20s %-20s", cases[i].label,
               bench::mean_ci(*steady, "%.3f").c_str(),
               bench::mean_ci(*peak, "%.3f").c_str());
    bench::emit(bench::json_row("fig03_drop_rate")
                    .add("mechanism", cases[i].label)
                    .add("trials", static_cast<std::uint64_t>(peak->n))
                    .add("steady_loss_mean", steady->mean)
                    .add("steady_loss_ci95", steady->ci95)
                    .add("peak_loss_mean", peak->mean)
                    .add("peak_loss_ci95", peak->ci95));
    peaks.push_back(peak->mean);
  }

  const bool spike = peaks[1] > 0.25;
  const bool tfrc_worse_than_tcp = peaks[1] > peaks[0];
  const bool sc_helps = peaks[2] < peaks[1];
  bench::verdict(spike && tfrc_worse_than_tcp && sc_helps,
                 "restart causes a large drop spike; TFRC(256) suffers a "
                 "higher/longer spike than TCP; self-clocking reduces it "
                 "(means over " +
                     std::to_string(kTrials) + " trials)");
  return 0;
}
