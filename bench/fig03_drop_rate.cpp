// Figure 3: drop-rate time series when a CBR source restarts after an
// idle period, for very slowly responsive SlowCC variants.
#include "bench_util.hpp"
#include "scenario/stabilization_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 3",
                "drop rate when the CBR source restarts after idling");
  bench::paper_note(
      "transient spike of ~40% drops at the restart; TCP returns to the "
      "steady rate within a couple of RTTs, TFRC(256) without self-clocking "
      "keeps the loss rate elevated for tens of seconds");

  struct Case {
    const char* label;
    scenario::FlowSpec spec;
  };
  const Case cases[] = {
      {"TCP(1/2)", scenario::FlowSpec::tcp(2)},
      {"TFRC(256)", scenario::FlowSpec::tfrc(256)},
      {"TFRC(256)+self-clock", scenario::FlowSpec::tfrc(256, true)},
  };

  // Compressed timeline (same structure as the paper's 0-150-180 s):
  // CBR on 0-60 s, idle 60-75 s, restart at 75 s.
  std::vector<std::vector<double>> traces;
  std::vector<double> peaks, steadies;
  for (const auto& c : cases) {
    scenario::StabilizationConfig cfg;
    cfg.spec = c.spec;
    cfg.cbr_stop = sim::Time::seconds(60);
    cfg.cbr_restart = sim::Time::seconds(75);
    cfg.end = sim::Time::seconds(140);
    const auto out = run_stabilization(cfg);
    traces.push_back(out.loss_rate_series);
    peaks.push_back(out.peak_loss_rate_after_restart);
    steadies.push_back(out.steady_loss_rate);
  }

  bench::row("%-8s %-12s %-12s %-22s", "t (s)", cases[0].label,
             cases[1].label, cases[2].label);
  // Print every second from t=70 (just before restart) to the end.
  for (double t = 70.0; t <= 138.0; t += 2.0) {
    const std::size_t idx = static_cast<std::size_t>(t / 0.05);
    auto at = [&](std::size_t ci) {
      return idx < traces[ci].size() ? traces[ci][idx] : 0.0;
    };
    bench::row("%-8.0f %-12.3f %-12.3f %-22.3f", t, at(0), at(1), at(2));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    bench::note("%-22s steady=%.3f  peak-after-restart=%.3f", cases[i].label,
                steadies[i], peaks[i]);
  }

  const bool spike = peaks[1] > 0.25;
  const bool tfrc_worse_than_tcp = peaks[1] > peaks[0];
  const bool sc_helps = peaks[2] < peaks[1];
  bench::verdict(spike && tfrc_worse_than_tcp && sc_helps,
                 "restart causes a large drop spike; TFRC(256) suffers a "
                 "higher/longer spike than TCP; self-clocking reduces it");
  return 0;
}
