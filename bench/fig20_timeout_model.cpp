// Figure 20 / Appendix A: throughput-equation curves — Reno (Padhye),
// pure AIMD, and the "AIMD with timeouts" extension.
#include <cmath>

#include "analysis/timeout_model.hpp"
#include "bench_util.hpp"
#include "cc/response_function.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 20",
                "response-function models with and without timeouts");
  bench::paper_note(
      "pure AIMD sqrt(1.5/p) applies for p < ~1/3; the 'AIMD with "
      "timeouts' line extends the model to rates below one packet/RTT "
      "(2/3 pkts/RTT at p = 1/2) and upper-bounds Reno, whose Padhye "
      "formula is the lower bound");

  bench::row("%-10s %14s %16s %14s", "p", "pure AIMD", "AIMD w/ timeouts",
             "Reno (Padhye)");
  bool bounds_hold = true;
  for (double p : {0.01, 0.05, 0.1, 0.2, 1.0 / 3.0, 0.5, 0.6, 0.7, 0.8,
                   0.9}) {
    const double pure =
        p <= 1.0 / 3.0 ? cc::simple_response_pkts_per_rtt(p) : std::nan("");
    const double with_to =
        p >= 0.5 ? analysis::aimd_with_timeouts_pkts_per_rtt(p)
                 : std::nan("");
    const double reno = cc::padhye_pkts_per_rtt(p);
    bench::row("%-10.3f %14.3f %16.3f %14.3f", p, pure, with_to, reno);
    // Upper-bound property checked over the figure's plotted range
    // (p <= ~0.8): beyond that the Padhye formula leaves its own
    // validity range and the curves cross.
    if (p >= 0.5 && p <= 0.8 && !(with_to > reno)) bounds_hold = false;
  }
  bench::note("spot check: p=1/2 timeout model = %.4f (paper: 2/3)",
              analysis::aimd_with_timeouts_pkts_per_rtt(0.5));

  bench::verdict(
      bounds_hold &&
          std::abs(analysis::aimd_with_timeouts_pkts_per_rtt(0.5) -
                   2.0 / 3.0) < 1e-9,
      "timeout model reproduces the 2/3 pkts/RTT point at p=1/2 and "
      "upper-bounds the Reno curve in its validity range");
  return 0;
}
