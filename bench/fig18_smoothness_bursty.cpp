// Figure 18: TFRC vs TCP(1/8) under the adversarial bursty loss
// pattern (6 s of light loss, 1 s of heavy loss, repeating) — designed
// to defeat TFRC's loss-interval averaging.
#include "bench_util.hpp"
#include "scenario/smoothness_experiment.hpp"

using namespace slowcc;

namespace {

scenario::SmoothnessOutcome run(const scenario::FlowSpec& spec) {
  scenario::SmoothnessConfig cfg;
  cfg.spec = spec;
  cfg.pattern = scenario::LossPattern::kMoreBursty;
  cfg.measure = sim::Time::seconds(42.0);  // six full 7-second cycles
  return run_smoothness(cfg);
}

}  // namespace

int main() {
  bench::header("Figure 18",
                "TFRC vs TCP(1/8) with the adversarial bursty loss pattern");
  bench::paper_note(
      "the heavy-congestion second supplants TFRC's entire memory while "
      "the light phase cannot fully restore it, so TFRC does worse than "
      "TCP(1/8) — and even TCP(1/2) — in both smoothness and throughput");

  const auto tfrc = run(scenario::FlowSpec::tfrc(6));
  const auto tcp8 = run(scenario::FlowSpec::tcp(8));
  const auto tcp2 = run(scenario::FlowSpec::tcp(2));

  bench::row("%-10s %12s %10s %14s", "flow", "smoothness", "CoV",
             "mean (Mb/s)");
  bench::row("%-10s %12.2f %10.2f %14.2f", "TFRC(6)", tfrc.smoothness,
             tfrc.cov, tfrc.mean_rate_bps / 1e6);
  bench::row("%-10s %12.2f %10.2f %14.2f", "TCP(1/8)", tcp8.smoothness,
             tcp8.cov, tcp8.mean_rate_bps / 1e6);
  bench::row("%-10s %12.2f %10.2f %14.2f", "TCP(1/2)", tcp2.smoothness,
             tcp2.cov, tcp2.mean_rate_bps / 1e6);

  bench::verdict(tfrc.cov > tcp8.cov &&
                     tfrc.mean_rate_bps < tcp8.mean_rate_bps,
                 "the adversarial pattern makes TFRC both rougher and "
                 "slower than TCP(1/8) — the reverse of Figure 17");
  return 0;
}
