// Extension: throughput recovery after a 2 s link blackout. The paper
// (§1, §6) argues slowly-responsive algorithms trade responsiveness for
// smoothness; a hard blackout is the extreme case of its step change in
// available bandwidth. Each mechanism runs alone on the dumbbell, the
// bottleneck goes dark for 2 s mid-run, and we measure how long the
// flow takes to climb back to 80% of its pre-blackout rate. One JSON
// row per mechanism for machine consumption, aligned columns for
// humans.
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault_script.hpp"
#include "fault/invariant_auditor.hpp"
#include "scenario/dumbbell.hpp"

using namespace slowcc;

namespace {

constexpr double kSampleSec = 0.1;
constexpr double kBlackoutStart = 15.0;
constexpr double kBlackoutLen = 2.0;
constexpr double kEndSec = 35.0;

struct RecoveryResult {
  double pre_bps = 0.0;        // mean rate over the 5 s before the blackout
  double post_bps = 0.0;       // mean rate over the final 10 s
  double recovery_sec = -1.0;  // time from link-up to 80% of pre_bps
  std::uint64_t audit_violations = 0;
};

RecoveryResult run_mechanism(const scenario::FlowSpec& spec) {
  sim::Simulator sim;
  scenario::DumbbellConfig cfg;
  cfg.seed = 42;
  scenario::Dumbbell net(sim, cfg);
  auto& flow = net.add_flow(spec);

  fault::FaultScript script;
  script.blackout(net.bottleneck(), sim::Time::seconds(kBlackoutStart),
                  sim::Time::seconds(kBlackoutLen));
  fault::FaultInjector injector(sim, cfg.seed);
  injector.arm(script);

  // Dogfood the integrity layer: the bench itself runs audited.
  fault::InvariantAuditor auditor(sim, {.period = sim::Time::millis(100),
                                        .throw_on_violation = false});
  auditor.watch_topology(net.topology());
  auditor.start();

  const int n_samples = static_cast<int>(kEndSec / kSampleSec) + 1;
  std::vector<std::int64_t> bytes(static_cast<std::size_t>(n_samples), 0);
  for (int k = 0; k < n_samples; ++k) {
    sim.schedule_at(sim::Time::seconds(k * kSampleSec), [&bytes, &flow, k] {
      bytes[static_cast<std::size_t>(k)] = flow.sink->bytes_received();
    });
  }

  net.start_flows();
  net.finalize();
  sim.run_until(sim::Time::seconds(kEndSec));

  auto window_bps = [&](double t0, double t1) {
    const auto a = static_cast<std::size_t>(t0 / kSampleSec);
    const auto b = static_cast<std::size_t>(t1 / kSampleSec);
    return static_cast<double>(bytes[b] - bytes[a]) * 8.0 / (t1 - t0);
  };

  RecoveryResult out;
  out.pre_bps = window_bps(kBlackoutStart - 5.0, kBlackoutStart);
  out.post_bps = window_bps(kEndSec - 10.0, kEndSec);
  out.audit_violations = auditor.violations().size();

  // First 0.5 s window after restoration whose rate reaches 80% of the
  // pre-blackout average.
  const double up = kBlackoutStart + kBlackoutLen;
  for (int k = static_cast<int>(up / kSampleSec) + 5; k < n_samples; ++k) {
    const double t = k * kSampleSec;
    if (window_bps(t - 0.5, t) >= 0.8 * out.pre_bps) {
      out.recovery_sec = t - up;
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::header("Extension (robustness)",
                "throughput recovery after a 2 s bottleneck blackout");
  bench::paper_note(
      "slowly-responsive mechanisms react to bandwidth changes over "
      "many RTTs; after a blackout every mechanism must rediscover the "
      "path, and smoother mechanisms are expected to ramp back slower");

  bench::row("%-10s %14s %14s %14s %10s", "mechanism", "pre (bps)",
             "post (bps)", "recovery (s)", "audits");

  struct Entry {
    const char* label;
    scenario::FlowSpec spec;
  };
  const std::vector<Entry> entries = {
      {"TCP", scenario::FlowSpec::tcp()},
      {"TFRC(6)", scenario::FlowSpec::tfrc(6)},
      {"RAP", scenario::FlowSpec::rap()},
  };

  bool all_recover = true;
  bool audits_clean = true;
  for (const auto& e : entries) {
    const RecoveryResult r = run_mechanism(e.spec);
    bench::row("%-10s %14.0f %14.0f %14.2f %10s", e.label, r.pre_bps,
               r.post_bps, r.recovery_sec,
               r.audit_violations == 0 ? "clean" : "VIOLATED");
    bench::emit(bench::json_row("ext_blackout_recovery")
                    .add("mechanism", e.label)
                    .add("blackout_s", kBlackoutLen)
                    .add("pre_bps", r.pre_bps)
                    .add("post_bps", r.post_bps)
                    .add("recovery_s", r.recovery_sec)
                    .add("audit_violations", r.audit_violations));
    if (r.recovery_sec < 0.0 || r.post_bps < 0.5 * r.pre_bps) {
      all_recover = false;
    }
    if (r.audit_violations != 0) audits_clean = false;
  }

  bench::verdict(all_recover && audits_clean,
                 "every mechanism climbs back to 80% of its pre-blackout "
                 "rate and the runs hold packet conservation under audit");
  return 0;
}
