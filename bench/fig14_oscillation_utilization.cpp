// Figure 14: link utilization under a 3:1 bandwidth oscillation as a
// function of the ON/OFF period, for TCP(1/8), TCP, and TFRC(6).
#include "bench_util.hpp"
#include "scenario/oscillation_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 14",
                "throughput fraction vs ON/OFF length, 3:1 oscillation");
  bench::paper_note(
      "50 ms bursts are absorbed by the RED queue (high throughput for "
      "all); around 200 ms (4 RTTs) every mechanism drops below ~80% of "
      "the average available bandwidth; longer periods recover");

  bench::row("%-12s %10s %10s %10s", "on/off (s)", "TCP(1/8)", "TCP",
             "TFRC(6)");
  double short_min = 1.0, fourrtt_max = 0.0;
  for (double len : {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2}) {
    double vals[3];
    int i = 0;
    for (const auto& spec :
         {scenario::FlowSpec::tcp(8), scenario::FlowSpec::tcp(2),
          scenario::FlowSpec::tfrc(6)}) {
      scenario::OscillationConfig cfg;
      cfg.spec = spec;
      cfg.on_off_length = sim::Time::seconds(len);
      const auto out = run_oscillation(cfg);
      vals[i++] = out.aggregate_fraction;
    }
    bench::row("%-12.2f %10.2f %10.2f %10.2f", len, vals[0], vals[1],
               vals[2]);
    if (len == 0.05) {
      short_min = std::min({vals[0], vals[1], vals[2]});
    }
    if (len == 0.2) {
      fourrtt_max = std::max({vals[0], vals[1], vals[2]});
    }
  }

  bench::verdict(short_min > fourrtt_max,
                 "50 ms bursts are absorbed by the queue while 200 ms "
                 "(4-RTT) oscillations hurt every mechanism");
  return 0;
}
