// Figure 14: link utilization under a 3:1 bandwidth oscillation as a
// function of the ON/OFF period, for TCP(1/8), TCP, and TFRC(6). The
// whole figure is one sweep grid (3 mechanisms x 7 periods), each cell
// run for several independent seeds; the table reports mean ± 95% CI.
#include <algorithm>

#include "bench_util.hpp"
#include "exp/aggregator.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/sweep_spec.hpp"

using namespace slowcc;

namespace {
constexpr int kTrials = 3;
}

int main() {
  bench::header("Figure 14",
                "throughput fraction vs ON/OFF length, 3:1 oscillation");
  bench::paper_note(
      "50 ms bursts are absorbed by the RED queue (high throughput for "
      "all); around 200 ms (4 RTTs) every mechanism drops below ~80% of "
      "the average available bandwidth; longer periods recover");

  exp::SweepSpec sweep;
  sweep.experiment = "oscillation";
  sweep.algorithms = {"tcp:8", "tcp:2", "tfrc:6"};
  sweep.assign("sweep on_off_length", "0.05,0.1,0.2,0.4,0.8,1.6,3.2");
  sweep.trials = kTrials;
  const std::vector<exp::CellStats> cells =
      exp::aggregate(bench::run_hardened(sweep.expand()));

  // Expansion order is algorithm (outer) x swept period (inner).
  const std::size_t n_periods = sweep.sweep_values.size();
  auto fraction = [&](std::size_t alg, std::size_t per) {
    return cells[alg * n_periods + per].metric("aggregate_fraction");
  };

  bench::row("%-12s %16s %16s %16s", "on/off (s)", "TCP(1/8)", "TCP",
             "TFRC(6)");
  double short_min = 1.0, fourrtt_max = 0.0;
  for (std::size_t p = 0; p < n_periods; ++p) {
    const double len = sweep.sweep_values[p];
    const exp::MetricStats* ms[3] = {fraction(0, p), fraction(1, p),
                                     fraction(2, p)};
    bench::row("%-12.2f %16s %16s %16s", len,
               bench::mean_ci(*ms[0], "%.2f").c_str(),
               bench::mean_ci(*ms[1], "%.2f").c_str(),
               bench::mean_ci(*ms[2], "%.2f").c_str());
    const char* labels[3] = {"TCP(1/8)", "TCP", "TFRC(6)"};
    for (int a = 0; a < 3; ++a) {
      bench::emit(bench::json_row("fig14_oscillation_utilization")
                      .add("mechanism", labels[a])
                      .add("on_off_s", len)
                      .add("trials", static_cast<std::uint64_t>(ms[a]->n))
                      .add("fraction_mean", ms[a]->mean)
                      .add("fraction_ci95", ms[a]->ci95));
    }
    if (len == 0.05) {
      short_min = std::min({ms[0]->mean, ms[1]->mean, ms[2]->mean});
    }
    if (len == 0.2) {
      fourrtt_max = std::max({ms[0]->mean, ms[1]->mean, ms[2]->mean});
    }
  }
  bench::note("(mean ± 95%% CI over %d trials per cell)", kTrials);

  bench::verdict(short_min > fourrtt_max,
                 "50 ms bursts are absorbed by the queue while 200 ms "
                 "(4-RTT) oscillations hurt every mechanism");
  return 0;
}
