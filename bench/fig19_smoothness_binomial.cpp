// Figure 19: IIAD and SQRT under the mildly bursty pattern of Fig 17.
#include "bench_util.hpp"
#include "scenario/smoothness_experiment.hpp"

using namespace slowcc;

namespace {

scenario::SmoothnessOutcome run(const scenario::FlowSpec& spec) {
  scenario::SmoothnessConfig cfg;
  cfg.spec = spec;
  cfg.pattern = scenario::LossPattern::kMildlyBursty;
  return run_smoothness(cfg);
}

}  // namespace

int main() {
  bench::header("Figure 19",
                "IIAD and SQRT with the mildly bursty loss pattern");
  bench::paper_note(
      "IIAD reduces additively and increases slowly, achieving smoothness "
      "at the cost of throughput relative to SQRT");

  const auto iiad = run(scenario::FlowSpec::iiad());
  const auto sqrt_o = run(scenario::FlowSpec::sqrt(2));

  bench::row("%-8s %12s %10s %14s", "flow", "smoothness", "CoV",
             "mean (Mb/s)");
  bench::row("%-8s %12.2f %10.2f %14.2f", "IIAD", iiad.smoothness, iiad.cov,
             iiad.mean_rate_bps / 1e6);
  bench::row("%-8s %12.2f %10.2f %14.2f", "SQRT", sqrt_o.smoothness,
             sqrt_o.cov, sqrt_o.mean_rate_bps / 1e6);

  bench::verdict(iiad.cov <= sqrt_o.cov + 0.05 &&
                     iiad.mean_rate_bps < sqrt_o.mean_rate_bps,
                 "IIAD trades throughput for smoothness relative to SQRT");
  return 0;
}
