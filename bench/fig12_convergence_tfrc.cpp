// Figure 12: 0.1-fair convergence time for two TFRC(k) flows vs k.
#include "bench_util.hpp"
#include "scenario/convergence_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 12",
                "0.1-fair convergence time for two TFRC(k) flows vs k");
  bench::paper_note(
      "unlike TCP(b), TFRC's convergence time grows only mildly with its "
      "slowness parameter: the equation adjusts to the loss-interval "
      "average rather than by repeated multiplicative steps");

  bench::row("%-8s %14s %14s", "k", "time (s)", "final shares");
  double t2 = 0, t64 = 0;
  for (int k : {2, 4, 8, 16, 32, 64, 128}) {
    scenario::ConvergenceConfig cfg;
    cfg.spec = scenario::FlowSpec::tfrc(k);
    cfg.first_flow_head_start = sim::Time::seconds(20.0);
    cfg.horizon = sim::Time::seconds(300.0);
    const auto out = run_convergence(cfg);
    char shares[48];
    std::snprintf(shares, sizeof(shares), "%.2f/%.2f", out.flow1_final_share,
                  out.flow2_final_share);
    if (out.result.converged) {
      bench::row("%-8d %14.1f %14s", k, out.result.convergence_time_s,
                 shares);
    } else {
      bench::row("%-8d %14s %14s", k, "> horizon", shares);
    }
    if (k == 2) t2 = out.result.convergence_time_s;
    if (k == 64) t64 = out.result.converged ? out.result.convergence_time_s
                                            : 300.0;
  }

  bench::verdict(
      t64 < 20.0 * std::max(t2, 1.0),
      "TFRC convergence grows far slower in k than TCP(b) does in 1/b "
      "(compare Figure 10: TCP(1/64) vs TCP(1/2) spans a much wider range)");
  return 0;
}
