// Figure 4: stabilization time (RTTs) vs the slowness parameter γ for
// TCP(1/γ), RAP(1/γ), SQRT(1/γ), TFRC(γ), and TFRC(γ) with
// self-clocking.
#include "bench_util.hpp"
#include "scenario/stabilization_experiment.hpp"

using namespace slowcc;

namespace {

double stab_time(const scenario::FlowSpec& spec) {
  scenario::StabilizationConfig cfg;
  cfg.spec = spec;
  cfg.cbr_stop = sim::Time::seconds(60);
  cfg.cbr_restart = sim::Time::seconds(75);
  cfg.end = sim::Time::seconds(150);
  return run_stabilization(cfg).stabilization.stabilization_time_rtts;
}

}  // namespace

int main() {
  bench::header("Figure 4", "stabilization time vs slowness parameter γ");
  bench::paper_note(
      "self-clocked algorithms (TCP(1/γ), SQRT(1/γ)) stabilize within tens "
      "of RTTs for every γ; rate-based TFRC(γ)/RAP(1/γ) without "
      "self-clocking climb into the hundreds of RTTs as γ grows; adding "
      "self-clocking to TFRC flattens its curve");

  const double gammas[] = {2, 8, 32, 128, 256};
  bench::row("%-6s %10s %10s %10s %10s %12s", "γ", "TCP(1/γ)", "RAP(1/γ)",
             "SQRT(1/γ)", "TFRC(γ)", "TFRC(γ)+SC");
  double tcp256 = 0, tfrc256 = 0, tfrc256sc = 0, rap256 = 0;
  for (double g : gammas) {
    const double tcp = stab_time(scenario::FlowSpec::tcp(g));
    const double rap = stab_time(scenario::FlowSpec::rap(g));
    const double sqrt_v = stab_time(scenario::FlowSpec::sqrt(g));
    const double tfrc = stab_time(scenario::FlowSpec::tfrc(static_cast<int>(g)));
    const double tfrc_sc =
        stab_time(scenario::FlowSpec::tfrc(static_cast<int>(g), true));
    bench::row("%-6.0f %10.0f %10.0f %10.0f %10.0f %12.0f", g, tcp, rap,
               sqrt_v, tfrc, tfrc_sc);
    if (g == 256) {
      tcp256 = tcp;
      tfrc256 = tfrc;
      tfrc256sc = tfrc_sc;
      rap256 = rap;
    }
  }

  bench::verdict(
      tfrc256 > 2.0 * tcp256 && rap256 > 2.0 * tcp256 &&
          tfrc256sc < 2.0 * tfrc256,
      "at γ=256 the rate-based algorithms take far longer to stabilize "
      "than self-clocked TCP; self-clocking improves TFRC(256)");
  return 0;
}
