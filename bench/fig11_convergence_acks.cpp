// Figure 11: the analytical model of §4.2.2 — expected number of ACKs
// for two pure AIMD(b) flows to reach a 0.1-fair allocation, at mark
// probability p = 0.1.
#include <cmath>

#include "analysis/convergence_model.hpp"
#include "bench_util.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 11",
                "expected ACKs to 0.1-fairness, log_{1-bp}(0.1), p = 0.1");
  bench::paper_note(
      "for b >= ~0.2 convergence needs few ACKs; below that the count "
      "grows like 1/b — exponentially longer convergence for very slow "
      "AIMD variants (shape identical for other p)");

  const double p = 0.1;
  const double delta = 0.1;
  bench::row("%-10s %-10s %16s", "γ (1/b)", "b", "expected ACKs");
  double acks2 = 0, acks256 = 0;
  for (double gamma : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0}) {
    const double b = 1.0 / gamma;
    const double acks = analysis::expected_acks_to_fairness(b, p, delta);
    bench::row("%-10.0f %-10.4f %16.0f", gamma, b, acks);
    if (gamma == 2) acks2 = acks;
    if (gamma == 256) acks256 = acks;
  }

  // Reference points from the closed form itself.
  bench::note("closed form check: log(0.1)/log(1-0.05) = %.1f ACKs at b=1/2",
              std::log(0.1) / std::log(0.95));
  bench::verdict(acks256 > 100.0 * acks2,
                 "ACK count grows ~1/b: b=1/256 needs two orders of "
                 "magnitude more ACKs than b=1/2");
  return 0;
}
