// Figure 16: utilization under an extreme 10:1 bandwidth oscillation.
#include "bench_util.hpp"
#include "scenario/oscillation_experiment.hpp"

using namespace slowcc;

int main() {
  bench::header("Figure 16",
                "throughput fraction vs ON/OFF length, 10:1 oscillation");
  bench::paper_note(
      "none of the mechanisms do well; at certain change frequencies "
      "TFRC performs particularly badly relative to TCP — an environment "
      "with varying load yields lower utilization with SlowCC than TCP");

  bench::row("%-12s %10s %10s %10s", "on/off (s)", "TCP(1/8)", "TCP",
             "TFRC(6)");
  bool tfrc_suffers_somewhere = false;
  bool nobody_great = true;
  for (double len : {0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4}) {
    double vals[3];
    int i = 0;
    for (const auto& spec :
         {scenario::FlowSpec::tcp(8), scenario::FlowSpec::tcp(2),
          scenario::FlowSpec::tfrc(6)}) {
      scenario::OscillationConfig cfg;
      cfg.spec = spec;
      cfg.on_off_length = sim::Time::seconds(len);
      cfg.cbr_peak_fraction = 0.9;  // 15 <-> 1.5 Mb/s available
      const auto out = run_oscillation(cfg);
      vals[i++] = out.aggregate_fraction;
    }
    bench::row("%-12.2f %10.2f %10.2f %10.2f", len, vals[0], vals[1],
               vals[2]);
    if (vals[2] < vals[1] - 0.08) tfrc_suffers_somewhere = true;
    if (len >= 0.2 && len <= 3.2 &&
        std::max({vals[0], vals[1], vals[2]}) > 0.97) {
      nobody_great = false;
    }
  }

  bench::verdict(tfrc_suffers_somewhere && nobody_great,
                 "10:1 oscillations hurt everyone; TFRC falls clearly "
                 "behind TCP at some change frequencies");
  return 0;
}
