// Flash-crowd dynamics: how fast does background traffic yield when a
// crowd of short TCP transfers arrives, and how cleanly does it
// recover? This is the §4.1.2 experiment exposed as a runnable demo —
// try changing the background FlowSpec below.
#include <cstdio>

#include "scenario/flash_crowd_experiment.hpp"

using namespace slowcc;

int main() {
  for (const auto& [label, spec] :
       std::initializer_list<std::pair<const char*, scenario::FlowSpec>>{
           {"TCP(1/2)", scenario::FlowSpec::tcp(2)},
           {"TFRC(256), no self-clocking", scenario::FlowSpec::tfrc(256)},
           {"TFRC(256), self-clocking", scenario::FlowSpec::tfrc(256, true)},
       }) {
    scenario::FlashCrowdExperimentConfig cfg;
    cfg.background = spec;
    cfg.crowd.arrival_rate_fps = 200.0;         // 200 new flows/sec
    cfg.crowd.duration = sim::Time::seconds(5); // for five seconds
    const auto out = run_flash_crowd(cfg);

    std::printf("background = %s\n", label);
    std::printf("  crowd: %zu flows started, %zu completed, mean FCT %.2f s\n",
                out.crowd_flows_started, out.crowd_flows_completed,
                out.crowd_mean_completion_s);
    std::printf("  background during crowd: %5.2f Mb/s\n",
                out.background_during_crowd_bps / 1e6);
    std::printf("  background after crowd : %5.2f Mb/s\n",
                out.background_after_crowd_bps / 1e6);
    std::printf("  timeline (Mb/s, 0.5 s bins, crowd hits at t=25 s):\n   ");
    for (std::size_t i = 40; i < out.background_bps.size() && i < 80;
         i += 2) {
      std::printf(" %4.1f", out.background_bps[i] / 1e6);
    }
    std::printf("\n\n");
  }
  return 0;
}
