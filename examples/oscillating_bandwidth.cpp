// Oscillating-bandwidth stress test (the paper's §4.2 environments):
// dial in an ON/OFF CBR pattern and watch how different congestion
// controls cope. Demonstrates the OnOffPattern API, including the
// sawtooth variants.
#include <cstdio>

#include "scenario/fairness_experiment.hpp"

using namespace slowcc;

namespace {

const char* pattern_name(traffic::PatternKind k) {
  switch (k) {
    case traffic::PatternKind::kSquare:
      return "square";
    case traffic::PatternKind::kSawtooth:
      return "sawtooth";
    case traffic::PatternKind::kReverseSawtooth:
      return "reverse-sawtooth";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("TCP vs TFRC(6) under different oscillation shapes "
              "(period 4 s, 3:1 amplitude)\n\n");
  std::printf("%-18s %10s %12s %12s\n", "pattern", "TCP mean", "TFRC mean",
              "utilization");
  for (auto kind :
       {traffic::PatternKind::kSquare, traffic::PatternKind::kSawtooth,
        traffic::PatternKind::kReverseSawtooth}) {
    scenario::FairnessConfig cfg;
    cfg.group_a = scenario::FlowSpec::tcp(2);
    cfg.group_b = scenario::FlowSpec::tfrc(6);
    cfg.pattern = kind;
    cfg.cbr_period = sim::Time::seconds(4.0);
    cfg.measure = sim::Time::seconds(120.0);
    const auto out = run_fairness(cfg);
    std::printf("%-18s %10.2f %12.2f %12.2f\n", pattern_name(kind),
                out.group_a_mean, out.group_b_mean, out.utilization);
  }
  std::printf(
      "\n(throughput normalized by the fair share of the average available "
      "bandwidth; the paper found sawtooth results similar to square, with "
      "smaller TCP-TFRC differences)\n");
  return 0;
}
