// Quickstart: build a dumbbell, run a TCP flow against a TFRC flow, and
// print their throughputs. Mirrors the README's first example.
#include <cstdio>

#include "scenario/dumbbell.hpp"

int main() {
  using namespace slowcc;

  sim::Simulator sim;
  scenario::DumbbellConfig cfg;   // 10 Mb/s bottleneck, 50 ms RTT, RED
  scenario::Dumbbell net(sim, cfg);

  auto& tcp = net.add_flow(scenario::FlowSpec::tcp());
  auto& tfrc = net.add_flow(scenario::FlowSpec::tfrc(6));
  net.add_reverse_traffic();
  net.start_flows();
  net.finalize();

  const sim::Time horizon = sim::Time::seconds(120.0);
  sim.run_until(horizon);

  std::printf("slowcc quickstart: 120 s on a 10 Mb/s, 50 ms RTT dumbbell\n");
  std::printf("  %-10s %8.2f Mb/s\n", tcp.spec.label().c_str(),
              net.flow_goodput_bps(tcp, horizon) / 1e6);
  std::printf("  %-10s %8.2f Mb/s\n", tfrc.spec.label().c_str(),
              net.flow_goodput_bps(tfrc, horizon) / 1e6);
  std::printf("  events executed: %llu\n",
              static_cast<unsigned long long>(sim.events_executed()));
  return 0;
}
