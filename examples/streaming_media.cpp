// Streaming-media scenario: the motivating workload for SlowCC.
//
// A "video stream" shares a dumbbell with bursty TCP web traffic. We
// run the stream twice — once over TCP(1/2), once over TFRC(6) — and
// compare the rate trace a player would see: mean rate, smoothness
// (paper metric), and coefficient of variation. TFRC should deliver a
// visibly steadier rate at comparable throughput.
#include <cstdio>

#include "metrics/rate_sampler.hpp"
#include "metrics/smoothness.hpp"
#include "scenario/dumbbell.hpp"

using namespace slowcc;

namespace {

struct StreamReport {
  double mean_mbps;
  double smoothness;
  double cov;
  std::vector<double> trace_mbps;
};

StreamReport run_stream(const scenario::FlowSpec& stream_spec) {
  sim::Simulator sim;
  scenario::DumbbellConfig cfg;  // 10 Mb/s, 50 ms RTT, RED
  scenario::Dumbbell net(sim, cfg);

  auto& stream = net.add_flow(stream_spec);
  // Competing "web" traffic: three standard TCP flows.
  for (int i = 0; i < 3; ++i) net.add_flow(scenario::FlowSpec::tcp());
  net.add_reverse_traffic();

  // Sample the stream's delivered rate in 500 ms chunks, like a player
  // buffer would.
  metrics::RateSampler sampler(
      sim, sim::Time::millis(500),
      [sink = stream.sink] { return sink->bytes_received(); });
  sampler.start_at(sim::Time::seconds(10.0));  // skip startup

  net.start_flows();
  net.finalize();
  sim.run_until(sim::Time::seconds(130.0));

  StreamReport r;
  r.trace_mbps.reserve(sampler.rates_bps().size());
  for (double v : sampler.rates_bps()) r.trace_mbps.push_back(v / 1e6);
  double sum = 0;
  for (double v : r.trace_mbps) sum += v;
  r.mean_mbps = r.trace_mbps.empty()
                    ? 0.0
                    : sum / static_cast<double>(r.trace_mbps.size());
  r.smoothness = metrics::smoothness_metric(sampler.rates_bps());
  r.cov = metrics::coefficient_of_variation(sampler.rates_bps());
  return r;
}

void print_report(const char* label, const StreamReport& r) {
  std::printf("\n%s\n", label);
  std::printf("  mean rate   : %.2f Mb/s\n", r.mean_mbps);
  std::printf("  smoothness  : %.2f (1 = perfectly smooth)\n", r.smoothness);
  std::printf("  rate CoV    : %.2f\n", r.cov);
  std::printf("  rate trace  :");
  for (std::size_t i = 0; i < r.trace_mbps.size() && i < 40; i += 2) {
    std::printf(" %.1f", r.trace_mbps[i]);
  }
  std::printf(" ... (Mb/s per 0.5 s)\n");
}

}  // namespace

int main() {
  std::printf("streaming example: a media flow vs three TCP web flows\n");
  const StreamReport tcp = run_stream(scenario::FlowSpec::tcp());
  const StreamReport tfrc = run_stream(scenario::FlowSpec::tfrc(6));
  print_report("stream over TCP(1/2):", tcp);
  print_report("stream over TFRC(6):", tfrc);
  std::printf("\nTFRC is %s for streaming here (CoV %.2f vs %.2f).\n",
              tfrc.cov < tcp.cov ? "the steadier choice" : "NOT steadier?!",
              tfrc.cov, tcp.cov);
  return 0;
}
