// Fault-injection walkthrough: a TCP and a TFRC flow share the
// dumbbell while the bottleneck flaps, changes speed, and suffers
// Gilbert-Elliott bursty wire loss — all audited by the
// InvariantAuditor and fenced by a Watchdog. Demonstrates the
// FaultScript, WireImpairment, InvariantAuditor, and Watchdog APIs.
#include <cstdio>

#include "fault/fault_script.hpp"
#include "fault/impairment.hpp"
#include "fault/invariant_auditor.hpp"
#include "fault/watchdog.hpp"
#include "scenario/dumbbell.hpp"

using namespace slowcc;

int main() {
  sim::Simulator sim;
  scenario::DumbbellConfig cfg;
  cfg.seed = 2026;
  scenario::Dumbbell net(sim, cfg);
  auto& tcp = net.add_flow(scenario::FlowSpec::tcp());
  auto& tfrc = net.add_flow(scenario::FlowSpec::tfrc(6));

  // A bursty wire: ~0.1% chance of entering a bad state per packet,
  // where every other packet is lost; mild reordering and duplication.
  fault::ImpairmentConfig imp;
  imp.loss = fault::GilbertElliottConfig{.p_good_to_bad = 0.001,
                                         .p_bad_to_good = 0.25,
                                         .loss_good = 0.0,
                                         .loss_bad = 0.5};
  imp.reorder_probability = 0.001;
  imp.duplicate_probability = 0.0005;
  fault::WireImpairment wire(imp, sim::Rng(cfg.seed));
  net.bottleneck().set_wire_model(&wire);

  // Scripted faults: a short flap storm at 10 s, a bandwidth downgrade
  // from 20-25 s, and delay jitter over the last stretch.
  fault::FaultScript script;
  script.flap(net.bottleneck(), sim::Time::seconds(10.0),
              sim::Time::millis(150), sim::Time::seconds(2.0), 3);
  script.bandwidth_at(net.bottleneck(), sim::Time::seconds(20.0),
                      cfg.bottleneck_bps / 4.0);
  script.bandwidth_at(net.bottleneck(), sim::Time::seconds(25.0),
                      cfg.bottleneck_bps);
  script.delay_jitter(net.bottleneck(), sim::Time::seconds(25.0),
                      sim::Time::seconds(30.0), sim::Time::millis(20),
                      sim::Time::millis(3));
  fault::FaultInjector injector(sim, cfg.seed);
  injector.arm(script);

  // Integrity: audit packet conservation every 50 ms, and refuse to run
  // away past an event budget even if a bug ever produced a livelock.
  fault::InvariantAuditor auditor(sim, {.period = sim::Time::millis(50)});
  auditor.watch_topology(net.topology());
  auditor.start();
  fault::Watchdog dog(sim, {.max_events = 50'000'000});

  net.start_flows();
  net.finalize();
  sim.run_until(sim::Time::seconds(30.0));

  const auto& st = net.bottleneck().stats();
  std::printf("30 s on a hostile bottleneck (seed %llu):\n",
              static_cast<unsigned long long>(cfg.seed));
  std::printf("  faults injected        %llu\n",
              static_cast<unsigned long long>(injector.faults_injected()));
  std::printf("  audits / violations    %llu / %zu\n",
              static_cast<unsigned long long>(auditor.audits_performed()),
              auditor.violations().size());
  std::printf("  arrivals               %llu\n",
              static_cast<unsigned long long>(st.arrivals));
  std::printf("  departures             %llu\n",
              static_cast<unsigned long long>(st.departures));
  std::printf("  drops: queue/down/wire %llu / %llu / %llu\n",
              static_cast<unsigned long long>(st.drops_overflow +
                                              st.drops_early +
                                              st.drops_forced),
              static_cast<unsigned long long>(st.drops_link_down),
              static_cast<unsigned long long>(st.drops_impairment));
  std::printf("  duplicated / reordered %llu / %llu\n",
              static_cast<unsigned long long>(st.duplicates),
              static_cast<unsigned long long>(st.reordered));
  std::printf("  TCP bytes received     %lld\n",
              static_cast<long long>(tcp.sink->bytes_received()));
  std::printf("  TFRC bytes received    %lld\n",
              static_cast<long long>(tfrc.sink->bytes_received()));
  std::printf("\nBoth flows kept moving data and every audit held packet "
              "conservation.\n");
  return 0;
}
