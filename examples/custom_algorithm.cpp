// Extending slowcc with your own congestion control algorithm.
//
// The TCP machinery (self-clocking, loss detection, retransmission,
// timeouts) is reusable: a new window-based algorithm only implements
// the WindowPolicy interface. Here we build "GAIMD(0.2)" — AIMD with a
// gentler decrease than TCP and the matching TCP-compatible increase —
// wire it into a dumbbell next to standard TCP, and check the two
// share the link.
#include <cstdio>

#include "cc/tcp_agent.hpp"
#include "cc/tcp_sink.hpp"
#include "cc/window_policy.hpp"
#include "scenario/dumbbell.hpp"

using namespace slowcc;

namespace {

// A custom policy: decrease to 80% on congestion, increase by the
// paper's TCP-compatible a(b) = 4(2b - b^2)/3 with b = 0.2.
class GentleAimd final : public cc::WindowPolicy {
 public:
  double increase_per_rtt(double /*w*/) const override {
    return cc::AimdPolicy::compatible_a(kB);
  }
  double decrease_to(double w) const override {
    return std::max(1.0, (1.0 - kB) * w);
  }
  std::string name() const override { return "GentleAimd(b=0.2)"; }

 private:
  static constexpr double kB = 0.2;
};

}  // namespace

int main() {
  sim::Simulator sim;
  scenario::DumbbellConfig cfg;
  cfg.reverse_tcp_flows = 0;
  scenario::Dumbbell net(sim, cfg);

  // A standard TCP flow via the scenario helper...
  auto& tcp = net.add_flow(scenario::FlowSpec::tcp());

  // ...and a custom flow assembled by hand from the public pieces.
  net::Node& src = net.topology().add_node("custom-src");
  net::Node& dst = net.topology().add_node("custom-dst");
  net.topology().add_duplex(src, net.left_router(), 100e6,
                            sim::Time::millis(1), 1000);
  net.topology().add_duplex(dst, net.right_router(), 100e6,
                            sim::Time::millis(1), 1000);
  cc::TcpSink custom_sink(sim, dst);
  cc::TcpAgent custom(sim, src, dst.id(), custom_sink.local_port(),
                      /*flow=*/42, std::make_unique<GentleAimd>());

  net.start_flows();
  net.finalize();
  sim.schedule_at(sim::Time(), [&] { custom.start(); });

  const sim::Time horizon = sim::Time::seconds(120.0);
  sim.run_until(horizon);

  const double tcp_mbps = net.flow_goodput_bps(tcp, horizon) / 1e6;
  const double custom_mbps =
      custom_sink.bytes_received() * 8.0 / horizon.as_seconds() / 1e6;
  std::printf("custom congestion control demo (120 s, 10 Mb/s dumbbell)\n");
  std::printf("  %-20s %6.2f Mb/s\n", "TCP(1/2)", tcp_mbps);
  std::printf("  %-20s %6.2f Mb/s  (policy: %s)\n", "custom GAIMD",
              custom_mbps, custom.policy().name().c_str());
  std::printf("  share ratio: %.2f (1.0 = perfectly equitable)\n",
              std::max(tcp_mbps, custom_mbps) /
                  std::max(0.01, std::min(tcp_mbps, custom_mbps)));
  return 0;
}
